(* Obs counters sit directly beside the table's own atomics, broken down
   by the rounds-remaining [k] of the lookup instead of one global
   number; a merged snapshot therefore sums exactly to [stats]. *)
let m_hits = Obs.Metrics.vec ~buckets:8 "cache.hits_by_k"
let m_misses = Obs.Metrics.vec ~buckets:8 "cache.misses_by_k"
let m_stores = Obs.Metrics.vec ~buckets:8 "cache.stores_by_k"

type entry = {
  key : Position.key;
  win : int Atomic.t; (* max k with a proven Duplicator win; -1 = none *)
  lose : int Atomic.t; (* min k with a proven Spoiler win; max_int = none *)
  unknown : (int * int * int) list Atomic.t;
      (* (k, width, budget): the search at k rounds with this Duplicator
         width exhausted this node budget *)
}

type t = {
  buckets : entry list Atomic.t array;
  mask : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  count : int Atomic.t;
}

let create ?(log2_buckets = 16) () =
  let n = 1 lsl log2_buckets in
  {
    buckets = Array.init n (fun _ -> Atomic.make []);
    mask = n - 1;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    count = Atomic.make 0;
  }

let bucket t key = t.buckets.(Hashtbl.hash key land t.mask)

let find_entry t key =
  List.find_opt (fun e -> String.equal e.key key) (Atomic.get (bucket t key))

let rec get_entry t key =
  let b = bucket t key in
  let chain = Atomic.get b in
  match List.find_opt (fun e -> String.equal e.key key) chain with
  | Some e -> e
  | None ->
      let e =
        {
          key;
          win = Atomic.make (-1);
          lose = Atomic.make max_int;
          unknown = Atomic.make [];
        }
      in
      if Atomic.compare_and_set b chain (e :: chain) then begin
        Atomic.incr t.count;
        e
      end
      else get_entry t key

let rec atomic_max a v =
  let c = Atomic.get a in
  if v > c && not (Atomic.compare_and_set a c v) then atomic_max a v

let rec atomic_min a v =
  let c = Atomic.get a in
  if v < c && not (Atomic.compare_and_set a c v) then atomic_min a v

let lookup t key ~k =
  match find_entry t key with
  | Some e when k <= Atomic.get e.win ->
      Atomic.incr t.hits;
      Obs.Metrics.vec_incr m_hits k;
      Some true
  | Some e when k >= Atomic.get e.lose ->
      Atomic.incr t.hits;
      Obs.Metrics.vec_incr m_hits k;
      Some false
  | _ ->
      Atomic.incr t.misses;
      Obs.Metrics.vec_incr m_misses k;
      None

let store t key ~k result =
  let e = get_entry t key in
  if result then atomic_max e.win k else atomic_min e.lose k;
  Atomic.incr t.stores;
  Obs.Metrics.vec_incr m_stores k

let unknown_reusable t key ~k ~width ~budget =
  match find_entry t key with
  | None -> false
  | Some e ->
      List.exists
        (fun (k', width', budget') -> k' = k && width' <= width && budget' >= budget)
        (Atomic.get e.unknown)

let rec store_unknown t key ~k ~width ~budget =
  let e = get_entry t key in
  let cur = Atomic.get e.unknown in
  let subsumed =
    List.exists
      (fun (k', width', budget') -> k' = k && width' <= width && budget' >= budget)
      cur
  in
  if not subsumed then
    if not (Atomic.compare_and_set e.unknown cur ((k, width, budget) :: cur))
    then store_unknown t key ~k ~width ~budget

let fold t ~init ~f =
  Array.fold_left
    (fun acc b ->
      List.fold_left
        (fun acc e ->
          f acc e.key ~win:(Atomic.get e.win) ~lose:(Atomic.get e.lose))
        acc (Atomic.get b))
    init t.buckets

type stats = { hits : int; misses : int; stores : int; entries : int }

let stats (t : t) =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stores = Atomic.get t.stores;
    entries = Atomic.get t.count;
  }

let reset_counters (t : t) =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.stores 0

let pp_stats ppf s =
  let total = s.hits + s.misses in
  Format.fprintf ppf "%d entries, %d hits / %d lookups (%.1f%%), %d stores"
    s.entries s.hits total
    (if total = 0 then 0. else 100. *. float_of_int s.hits /. float_of_int total)
    s.stores
