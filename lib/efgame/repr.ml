type t = Boxed | Packed

let to_string = function Boxed -> "boxed" | Packed -> "packed"

let of_string = function
  | "boxed" -> Ok Boxed
  | "packed" -> Ok Packed
  | s -> Error (Printf.sprintf "unknown engine %S (expected boxed|packed)" s)

let pp ppf r = Format.pp_print_string ppf (to_string r)

let initial =
  match Sys.getenv_opt "EFGAME_ENGINE" with
  | None | Some "" -> Packed
  | Some s -> (
      match of_string (String.lowercase_ascii s) with
      | Ok r -> r
      | Error msg -> invalid_arg ("EFGAME_ENGINE: " ^ msg))

let current = ref initial
let default () = !current
let set_default r = current := r
