(* The packed solver engine: the boxed searches of [Unary], [Game] and
   [Existential] replayed over succinct representations — factors as
   suffix-automaton ids ({!Words.Factor_bitset}), positions as
   arena-allocated int pairs ({!Arena}), memo keys as packed integers.

   The contract with the boxed engine is strict mirroring: identical move
   order, identical candidate order, identical pruning, identical budget
   accounting and identical Obs metrics, so that the two engines expand
   the same search tree node for node. Verdict identity is what the
   monotone-merge soundness of the distributed scans rests on (see
   DESIGN.md); node identity is stronger, and cheap to test. Any
   divergence in [Unary]/[Game] search order must be ported here (and
   will be caught by the identity suite in test/test_packed.ml).

   Representation choices, in one place:
   - a position's entries live in a per-domain {!Arena} (reset at solve
     start, pushed/popped during search: no per-node allocation);
   - local memo keys pack the sorted played pairs into one OCaml int
     whenever they fit in 62 bits, falling back to int-array keys (the
     number of played pairs is a function of remaining rounds, so the
     variable-width encoding is unambiguous within a table);
   - shared-{!Cache} traffic still uses {!Position} string keys, built
     only at store-eligible depths — table bytes and persistence format
     are engine-independent. *)

module Factor_bitset = Words.Factor_bitset

exception Budget_exceeded

(* Same registry instances as [Game]/[Unary]: packed nodes land in the
   same vectors the observability CI cross-checks against scan totals. *)
let m_nodes = Obs.Metrics.vec ~buckets:8 "game.nodes_by_k"
let m_prune_dominated = Obs.Metrics.counter "game.prune.dominated"
let m_prune_forced = Obs.Metrics.counter "game.prune.forced"
let m_prune_unsat = Obs.Metrics.counter "game.prune.unsat"

(* smallest b >= 1 with v < 2^b *)
let bits_for v =
  let rec go b = if v lsr b = 0 then b else go (b + 1) in
  max 1 (go 0)

(* ------------------------------------------------------------------ *)
(* Per-domain scratch: one arena and one sort buffer, reused across
   every packed solve on this domain. Solves reset the arena on entry
   and are not reentrant, so stack discipline guarantees no state leaks
   from one solve into the next (asserted by the arena-reuse tests). *)

type scratch = {
  ar : Arena.t;
  mutable keybuf : int array;
  mutable w1buf : int array; (* closure values for the 1-round closed form *)
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { ar = Arena.create (); keybuf = Array.make 16 0; w1buf = Array.make 64 0 })

let scratch () = Domain.DLS.get scratch_key
let scratch_arena () = (scratch ()).ar

let ensure_keybuf s n =
  if Array.length s.keybuf < n then
    s.keybuf <- Array.make (max 16 (2 * n)) 0

let ensure_w1buf s n =
  if Array.length s.w1buf < n then s.w1buf <- Array.make (max 64 (2 * n)) 0

(* ------------------------------------------------------------------ *)
(* Position memo: one table per remaining-round count. Within a table
   every key encodes the same number of played pairs, so the packed int
   (or the int array of packed pairs) is a faithful key. The probe array
   trick avoids allocating on lookups: probing Hashtbl with a mutable
   scratch key is sound (hashing and equality are structural); only a
   store copies. Recursion strictly decreases k, so probe.(k) is stable
   across the subtree computed under it. *)

module Pmemo = struct
  type t = {
    tbl : (int, bool) Hashtbl.t array;
    big : (int array, bool) Hashtbl.t array;
    fits : bool array;
    probe : int array array;
    pairbits : int;
  }

  let create ~k0 ~npairs_at ~pairbits =
    {
      tbl = Array.init (k0 + 1) (fun _ -> Hashtbl.create 64);
      big = Array.init (k0 + 1) (fun _ -> Hashtbl.create 8);
      fits = Array.init (k0 + 1) (fun k -> npairs_at k * pairbits <= 62);
      probe = Array.init (k0 + 1) (fun k -> Array.make (max 1 (npairs_at k)) 0);
      pairbits;
    }

  let size m =
    let total = ref 0 in
    Array.iter (fun t -> total := !total + Hashtbl.length t) m.tbl;
    Array.iter (fun t -> total := !total + Hashtbl.length t) m.big;
    !total

  (* memoized [compute ()] under the key in buf.[0 .. n-1] *)
  let cached m k buf n compute =
    if m.fits.(k) then begin
      let key = ref 0 in
      for i = 0 to n - 1 do
        key := (!key lsl m.pairbits) lor buf.(i)
      done;
      let key = !key in
      match Hashtbl.find_opt m.tbl.(k) key with
      | Some r -> r
      | None ->
          let r = compute () in
          Hashtbl.replace m.tbl.(k) key r;
          r
    end
    else begin
      let pr = m.probe.(k) in
      Array.blit buf 0 pr 0 n;
      match Hashtbl.find_opt m.big.(k) pr with
      | Some r -> r
      | None ->
          let r = compute () in
          Hashtbl.replace m.big.(k) (Array.copy pr) r;
          r
    end
end

(* Pack the played pairs (arena indices >= nconsts) into keybuf, each as
   (x lsl rbits) lor y, insertion-sorted ascending; returns the count.
   Numeric order on packed pairs is lexicographic order on (x, y), so
   two positions collide exactly when the boxed sorted pair lists are
   equal — memo hit patterns match the boxed engine's. *)
let fill_sorted_pairs s ar ~nconsts ~rbits =
  let n = Arena.len ar - nconsts in
  ensure_keybuf s n;
  let buf = s.keybuf in
  let xs = Arena.col_a ar and ys = Arena.col_b ar in
  for i = 0 to n - 1 do
    let v =
      (Array.unsafe_get xs (nconsts + i) lsl rbits)
      lor Array.unsafe_get ys (nconsts + i)
    in
    let j = ref i in
    while !j > 0 && buf.(!j - 1) > v do
      buf.(!j) <- buf.(!j - 1);
      decr j
    done;
    buf.(!j) <- v
  done;
  n

(* ================================================================== *)
(* Unary engine: Unary.solve over the arena.                           *)
(* ================================================================== *)

(* Unary.ext_ok over arena entries (consts + played; order-free). The
   columns are fetched once and read unsafely: no push happens inside,
   and every index is < len. (Without flambda each [Arena.fst_at] is a
   real call, and these loops are the scan's inner core.) *)
let uext_ok ar na nb =
  let len = Arena.len ar in
  let xs = Arena.col_a ar and ys = Arena.col_b ar in
  let rec eq i =
    i >= len
    || (na = Array.unsafe_get xs i) = (nb = Array.unsafe_get ys i)
       && eq (i + 1)
  and outer i =
    i >= len
    ||
    let x = Array.unsafe_get xs i and y = Array.unsafe_get ys i in
    (x = na + na) = (y = nb + nb)
    && inner x y 0
    && outer (i + 1)
  and inner x y j =
    j >= len
    ||
    let u = Array.unsafe_get xs j and v = Array.unsafe_get ys j in
    (na = x + u) = (nb = y + v)
    && (x = na + u) = (y = nb + v)
    && inner x y (j + 1)
  in
  eq 0 && outer 0

(* Unary.forced_reply over the arena, oriented by [swap] (false: Spoiler
   moved on the left). Returns the forced reply or -1 (unconstrained);
   raises Unary.Unsat exactly when the boxed version does. *)
let uforced_reply ar ~swap ~other_max a =
  let len = Arena.len ar in
  let l = Arena.col_a ar and r = Arena.col_b ar in
  (* orientation = exchanging the columns, hoisted out of the loops *)
  let xs = if swap then r else l and ys = if swap then l else r in
  let forced = ref (-1) in
  let force v =
    if v < 0 || v > other_max then raise Unary.Unsat
    else if !forced = -1 then forced := v
    else if !forced <> v then raise Unary.Unsat
  in
  for i = 0 to len - 1 do
    let x = Array.unsafe_get xs i and y = Array.unsafe_get ys i in
    if x = a + a then
      if y land 1 = 1 then raise Unary.Unsat else force (y asr 1);
    for j = 0 to len - 1 do
      let u = Array.unsafe_get xs j and v = Array.unsafe_get ys j in
      if x + u = a then force (y + v);
      if x = a + u then force (y - v)
    done
  done;
  !forced

(* Additive closure of one arena column (the [swap]-oriented "mine"
   side), clipped to [2..max_v]: values x + u, x - u, x / 2 over the
   column's entries, deduplicated into [buf]. Returns the count. Mirrors
   [Unary.closure]; order is irrelevant (the caller folds a conjunction
   over the values). *)
let uclosure ar ~swap ~max_v buf =
  let len = Arena.len ar in
  let l = Arena.col_a ar and r = Arena.col_b ar in
  let xs = if swap then r else l in
  let n = ref 0 in
  let add v =
    if v >= 2 && v <= max_v then begin
      let dup = ref false in
      for i = 0 to !n - 1 do
        if buf.(i) = v then dup := true
      done;
      if not !dup then begin
        buf.(!n) <- v;
        incr n
      end
    end
  in
  for i = 0 to len - 1 do
    let x = Array.unsafe_get xs i in
    if x land 1 = 0 then add (x asr 1);
    for j = 0 to len - 1 do
      add (x + Array.unsafe_get xs j);
      add (x - Array.unsafe_get xs j)
    done
  done;
  !n

(* The 1-round closed form over the arena — [Unary.w1] without the list
   round-trip. This is the leaf of every unary search, so it carries most
   of a scan's work; unlike the recursive case there is no node or metric
   accounting inside, so only the boolean must match the boxed form (and
   does, case for case). *)
let uw1 s ar ~p ~q =
  let len = Arena.len ar in
  ensure_w1buf s (len * ((2 * len) + 1));
  let buf = s.w1buf in
  let side ~swap ~mine_max ~other_max =
    let cs_n = uclosure ar ~swap ~max_v:mine_max buf in
    let ok = ref true in
    for ci = 0 to cs_n - 1 do
      if !ok then
        let a = buf.(ci) in
        match uforced_reply ar ~swap ~other_max a with
        | exception Unary.Unsat -> ok := false
        | -1 ->
            (* unreachable for closure moves; kept for exactness *)
            let rec scan b =
              b <= other_max
              && ((if swap then uext_ok ar b a else uext_ok ar a b)
                 || scan (b + 1))
            in
            if not (scan 0) then ok := false
        | b ->
            if not (if swap then uext_ok ar b a else uext_ok ar a b) then
              ok := false
    done;
    !ok
    &&
    (* generic moves exist iff the closure misses part of [2..mine_max] *)
    let generic_move = cs_n < max 0 (mine_max - 1) in
    (not generic_move)
    ||
    let cs'_n = uclosure ar ~swap:(not swap) ~max_v:other_max buf in
    cs'_n < max 0 (other_max - 1)
  in
  side ~swap:false ~mine_max:p ~other_max:q
  && side ~swap:true ~mine_max:q ~other_max:p

let solve_unary ?cache ?(store_depth = max_int) ?(limit = max_int)
    ?(budget = 50_000_000) ~p ~q ~init k0 =
  if p < 1 || q < 1 then
    invalid_arg "Packed.solve_unary: need p >= 1 and q >= 1";
  let s = scratch () in
  let ar = s.ar in
  Arena.reset ar;
  Arena.push ar 0 0;
  Arena.push ar 1 1;
  let nconsts = 2 in
  let full = limit = max_int in
  let nodes = ref 0 in
  let rbits = bits_for (max p q) in
  let npairs0 = List.length init in
  let memo =
    Pmemo.create ~k0
      ~npairs_at:(fun k -> npairs0 + (k0 - k))
      ~pairbits:(2 * rbits)
  in
  let candidates_l = Unary.candidate_table ~mine_max:p ~other_max:q in
  let candidates_r = Unary.candidate_table ~mine_max:q ~other_max:p in
  let order_l = Unary.move_order p and order_r = Unary.move_order q in
  let rec wins k =
    incr nodes;
    Obs.Metrics.vec_incr m_nodes k;
    if !nodes > budget then raise Budget_exceeded;
    if k = 0 then true
    else
      let n = fill_sorted_pairs s ar ~nconsts ~rbits in
      Pmemo.cached memo k s.keybuf n (fun () -> compute k n)
  and compute k n =
    if k = 1 then
      (* closed form; like the boxed engine, never touches the shared
         table (the computation is cheaper than building its key) *)
      uw1 s ar ~p ~q
    else
      let gkey =
        match cache with
        | Some _ when n <= store_depth ->
            Some (Position.unary_key ~p ~q (Arena.to_list ~from:nconsts ar))
        | _ -> None
      in
      let cached_r =
        match (cache, gkey) with
        | Some c, Some key -> Cache.lookup c key ~k
        | _ -> None
      in
      match cached_r with
      | Some r -> r
      | None ->
          let r = spoiler false k && spoiler true k in
          (match (cache, gkey) with
          | Some c, Some key ->
              (* limited-mode failures are not genuine Spoiler wins *)
              if r || full then Cache.store c key ~k r
          | _ -> ());
          r
  and spoiler swap k =
    let rec moves = function
      | [] -> true
      | a :: rest -> (dominated a || survives a) && moves rest
    and dominated a =
      let len = Arena.len ar in
      let l = Arena.col_a ar and r = Arena.col_b ar in
      let xs = if swap then r else l in
      let rec go i = i < len && (Array.unsafe_get xs i = a || go (i + 1)) in
      let d = go nconsts in
      if d then Obs.Metrics.incr m_prune_dominated;
      d
    and survives a =
      let other_max = if swap then p else q in
      match uforced_reply ar ~swap ~other_max a with
      | exception Unary.Unsat ->
          Obs.Metrics.incr m_prune_unsat;
          false
      | -1 ->
          let cands = if swap then candidates_r a else candidates_l a in
          if full then List.exists (fun b -> try_reply a b) cands
          else
            let rec go i = function
              | [] -> false
              | b :: rest -> i < limit && (try_reply a b || go (i + 1) rest)
            in
            go 0 cands
      | b ->
          Obs.Metrics.incr m_prune_forced;
          try_reply a b
    and try_reply a b =
      let na, nb = if swap then (b, a) else (a, b) in
      uext_ok ar na nb
      && begin
           Arena.push ar na nb;
           let r = wins (k - 1) in
           Arena.pop ar;
           r
         end
    in
    moves (if swap then order_r else order_l)
  in
  (* validate the initial position entry by entry (same fold as boxed:
     once an entry fails, later ones are not added) *)
  let valid = ref true in
  List.iter
    (fun (l, r) ->
      if !valid && l >= 0 && l <= p && r >= 0 && r <= q && uext_ok ar l r
      then Arena.push ar l r
      else valid := false)
    init;
  let result =
    if not !valid then Some false
    else try Some (wins k0) with Budget_exceeded -> None
  in
  (result, !nodes, Pmemo.size memo)

(* ================================================================== *)
(* General engine: Game's seed path (and Existential's one-sided game) *)
(* over factor ids.                                                    *)
(* ================================================================== *)

type gside = {
  fb : Factor_bitset.t;
  lexrank : int array; (* id -> rank in String.compare order *)
  wlen : int;
}

type gstate = {
  gl : gside;
  gr : gside;
  consts_l : int array; (* parallel entry coordinates; -1 encodes ⊥ *)
  consts_r : int array;
  moves_l : int array; (* Spoiler moves, longest first (desc len, lex) *)
  moves_r : int array;
  xmap_lr : int array; (* left id -> right id of the same string, or -1 *)
  xmap_rl : int array;
  cand_l : int array option array; (* response order per left move *)
  cand_r : int array option array;
  lbits : int;
  gbits : int; (* bits of a packed (left, right) pair: lbits + rbits *)
}

(* String.compare on two factors of one word, via character reads. *)
let cmp_lex fb i j =
  if i = j then 0
  else
    let w = Factor_bitset.word fb in
    let li = Factor_bitset.length fb i and lj = Factor_bitset.length fb j in
    let si = Factor_bitset.start fb i and sj = Factor_bitset.start fb j in
    let m = if li < lj then li else lj in
    let rec go k =
      if k = m then compare li lj
      else
        let c = Char.compare w.[si + k] w.[sj + k] in
        if c <> 0 then c else go (k + 1)
    in
    go 0

(* Game.by_desc_length: descending length, then String.compare. *)
let cmp_desc_len fb i j =
  let c = compare (Factor_bitset.length fb j) (Factor_bitset.length fb i) in
  if c <> 0 then c else cmp_lex fb i j

let make_gside w =
  let fb = Factor_bitset.of_word w in
  let size = Factor_bitset.size fb in
  let ids = Array.init size Fun.id in
  Array.sort (cmp_lex fb) ids;
  let lexrank = Array.make size 0 in
  Array.iteri (fun rank id -> lexrank.(id) <- rank) ids;
  { fb; lexrank; wlen = String.length w }

let const_ids fb proj consts =
  List.map
    (fun e ->
      match proj e with
      | None -> -1
      | Some v -> (
          match Factor_bitset.id_of fb v with
          | Some i -> i
          | None -> invalid_arg "Packed.make_gstate: constant not a factor"))
    consts
  |> Array.of_list

let movable side consts =
  let size = Factor_bitset.size side.fb in
  let skip = Factor_bitset.Bitset.create size in
  Array.iter (fun i -> if i >= 0 then Factor_bitset.Bitset.add skip i) consts;
  let out = ref [] in
  for i = size - 1 downto 0 do
    if not (Factor_bitset.Bitset.mem skip i) then out := i :: !out
  done;
  let arr = Array.of_list !out in
  Array.sort (cmp_desc_len side.fb) arr;
  arr

let cross_map from_ to_ =
  Array.init (Factor_bitset.size from_.fb) (fun a ->
      Factor_bitset.id_of_sub to_.fb
        (Factor_bitset.word from_.fb)
        ~off:(Factor_bitset.start from_.fb a)
        ~len:(Factor_bitset.length from_.fb a))

let make_gstate left right consts =
  let lw = Fc.Structure.word left and rw = Fc.Structure.word right in
  let gl = make_gside lw and gr = make_gside rw in
  let fl = Factor_bitset.size gl.fb and fr = Factor_bitset.size gr.fb in
  (* The packed candidate sort key multiplexes (penalty, distance,
     lex rank, id) into one int; bail out to the boxed engine when the
     instance is too large for that to fit (far beyond current use). *)
  if gl.wlen + gr.wlen > 4000 || fl > 1 lsl 20 || fr > 1 lsl 20 then None
  else
    Some
      {
        gl;
        gr;
        consts_l = const_ids gl.fb fst consts;
        consts_r = const_ids gr.fb snd consts;
        moves_l = movable gl (const_ids gl.fb fst consts);
        moves_r = movable gr (const_ids gr.fb snd consts);
        xmap_lr = cross_map gl gr;
        xmap_rl = cross_map gr gl;
        cand_l = Array.make fl None;
        cand_r = Array.make fr None;
        lbits = bits_for (max 1 (fl - 1));
        gbits = bits_for (max 1 (fl - 1)) + bits_for (max 1 (fr - 1));
      }

(* Game.response_candidates' tail: the whole response universe sorted by
   (score, response) — the score is position-independent, so the order
   is computed once per (side, move) and reused at every node. Key
   layout (most significant first): identical-response flag, prefix/
   suffix status penalty, length distance, lexicographic rank — exactly
   the boxed ((-1|0, penalty, distance), string) sort key. *)
let build_candidates ~from_ ~to_ ~xmap a =
  let ft = Factor_bitset.size to_.fb in
  let rbits = bits_for (max 1 (ft - 1)) in
  let la = Factor_bitset.length from_.fb a in
  let lf = from_.wlen and lt = to_.wlen in
  let apre = Factor_bitset.is_word_prefix from_.fb a in
  let asuf = Factor_bitset.is_word_suffix from_.fb a in
  let xa = xmap.(a) in
  let arr =
    Array.init ft (fun r ->
        let key =
          if r = xa then 0
          else
            let lr = Factor_bitset.length to_.fb r in
            let pen =
              (if Factor_bitset.is_word_prefix to_.fb r = apre then 0 else 1)
              + if Factor_bitset.is_word_suffix to_.fb r = asuf then 0 else 1
            in
            let mirror = abs (lt - lr - (lf - la)) in
            let direct = abs (lr - la) in
            let dist = if mirror < direct then mirror else direct in
            1 + (((pen * (lf + lt + 1)) + dist) * ft) + to_.lexrank.(r)
        in
        (key lsl rbits) lor r)
  in
  Array.sort (fun (x : int) y -> compare x y) arr;
  let mask = (1 lsl rbits) - 1 in
  Array.map (fun v -> v land mask) arr

let candidates st swap a =
  let tbl = if swap then st.cand_r else st.cand_l in
  match tbl.(a) with
  | Some arr -> arr
  | None ->
      let arr =
        if swap then
          build_candidates ~from_:st.gr ~to_:st.gl ~xmap:st.xmap_rl a
        else build_candidates ~from_:st.gl ~to_:st.gr ~xmap:st.xmap_lr a
      in
      tbl.(a) <- Some arr;
      arr

(* Game.derived_candidates over ids: same patterns, same discovery order
   (most recent play first, then constants in declaration order — the
   boxed entries list), same dedup; responses that are not factors of
   the target word are dropped here instead of by a post-filter, which
   yields the same sequence. *)
let derived st ar ~nconsts swap a =
  let from_ = if swap then st.gr else st.gl in
  let to_ = if swap then st.gl else st.gr in
  let ffb = from_.fb and tfb = to_.fb in
  let len = Arena.len ar in
  let nplayed = len - nconsts in
  let idx t = if t < nplayed then len - 1 - t else t - nplayed in
  let x_at t =
    let i = idx t in
    if swap then Arena.snd_at ar i else Arena.fst_at ar i
  in
  let y_at t =
    let i = idx t in
    if swap then Arena.fst_at ar i else Arena.snd_at ar i
  in
  let la = Factor_bitset.length ffb a in
  let out = ref [] in
  let add r = if not (List.mem r !out) then out := r :: !out in
  for ti = 0 to len - 1 do
    let xi = x_at ti and yi = y_at ti in
    if xi >= 0 && yi >= 0 then
      for tj = 0 to len - 1 do
        let xj = x_at tj and yj = y_at tj in
        if xj >= 0 && yj >= 0 then begin
          (* a = xi · xj  ⇒  respond yi · yj *)
          if Factor_bitset.concat ffb xi xj = a then begin
            let r = Factor_bitset.concat tfb yi yj in
            if r >= 0 then add r
          end;
          let li = Factor_bitset.length ffb xi in
          let lj = Factor_bitset.length ffb xj in
          let lyi = Factor_bitset.length tfb yi in
          let lyj = Factor_bitset.length tfb yj in
          (* xi = a · xj  ⇒  respond yi with suffix yj removed *)
          if
            li = la + lj
            && Factor_bitset.is_prefix_of ffb a xi
            && Factor_bitset.is_suffix_of ffb xj xi
            && Factor_bitset.is_suffix_of tfb yj yi
          then add (Factor_bitset.sub_id tfb yi ~off:0 ~len:(lyi - lyj));
          (* xi = xj · a  ⇒  respond yi with prefix yj removed *)
          if
            li = lj + la
            && Factor_bitset.is_prefix_of ffb xj xi
            && Factor_bitset.is_suffix_of ffb a xi
            && Factor_bitset.is_prefix_of tfb yj yi
          then add (Factor_bitset.sub_id tfb yi ~off:lyj ~len:(lyi - lyj))
        end
      done
  done;
  List.rev !out

let c3 fb x y z = x >= 0 && y >= 0 && z >= 0 && Factor_bitset.concat fb y z = x

(* Partial_iso.extension_ok over ids: pairwise equality-pattern checks
   of the new entry against every entry, then every concatenation triple
   containing the new entry (index -1 below). *)
let ext_ok st ar nl nr =
  let len = Arena.len ar in
  let rec pairs i =
    i >= len
    || (nl = Arena.fst_at ar i) = (nr = Arena.snd_at ar i) && pairs (i + 1)
  in
  pairs 0
  &&
  let getl t = if t < 0 then nl else Arena.fst_at ar t in
  let getr t = if t < 0 then nr else Arena.snd_at ar t in
  let tri i j k =
    c3 st.gl.fb (getl i) (getl j) (getl k)
    = c3 st.gr.fb (getr i) (getr j) (getr k)
  in
  let ok = ref true in
  let i = ref (-1) in
  while !ok && !i < len do
    let j = ref (-1) in
    while !ok && !j < len do
      if
        not (tri (-1) !i !j && tri !i (-1) !j && tri !i !j (-1))
      then ok := false;
      incr j
    done;
    incr i
  done;
  !ok

(* Existential.extension_ok: one-directional preservation (left patterns
   must transfer to the right; the converse imposes nothing). *)
let ext_ok_exist st ar nl nr =
  let len = Arena.len ar in
  let rec pairs i =
    i >= len
    || (Arena.fst_at ar i <> nl || Arena.snd_at ar i = nr) && pairs (i + 1)
  in
  pairs 0
  &&
  let getl t = if t < 0 then nl else Arena.fst_at ar t in
  let getr t = if t < 0 then nr else Arena.snd_at ar t in
  let tri i j k =
    (not (c3 st.gl.fb (getl i) (getl j) (getl k)))
    || c3 st.gr.fb (getr i) (getr j) (getr k)
  in
  let ok = ref true in
  let i = ref (-1) in
  while !ok && !i < len do
    let j = ref (-1) in
    while !ok && !j < len do
      if
        not (tri (-1) !i !j && tri !i (-1) !j && tri !i !j (-1))
      then ok := false;
      incr j
    done;
    incr i
  done;
  !ok

(* The shared ∀∃ recursion. [exist] selects Existential's one-sided game
   (Left moves only, directional extension check, no Obs metrics — the
   boxed Existential emits none). *)
let run st ~exist ~metrics ~nodes0 ~budget k0 =
  let s = scratch () in
  let ar = s.ar in
  Arena.reset ar;
  let nconsts = Array.length st.consts_l in
  for i = 0 to nconsts - 1 do
    Arena.push ar st.consts_l.(i) st.consts_r.(i)
  done;
  let rbits = st.gbits - st.lbits in
  let nodes = ref nodes0 in
  let memo = Pmemo.create ~k0 ~npairs_at:(fun k -> k0 - k) ~pairbits:st.gbits in
  let rec wins k =
    incr nodes;
    if metrics then Obs.Metrics.vec_incr m_nodes k;
    if !nodes > budget then raise Budget_exceeded;
    if k = 0 then true
    else
      let n = fill_sorted_pairs s ar ~nconsts ~rbits in
      Pmemo.cached memo k s.keybuf n (fun () ->
          if exist then spoiler false k
          else spoiler false k && spoiler true k)
  and spoiler swap k =
    let moves = if swap then st.moves_r else st.moves_l in
    let nmoves = Array.length moves in
    let rec go i = i >= nmoves || (try_move moves.(i) && go (i + 1))
    and try_move a = dominated a || survives a
    and dominated a =
      let len = Arena.len ar in
      let rec scan i =
        i < len
        && ((if swap then Arena.snd_at ar i else Arena.fst_at ar i) = a
           || scan (i + 1))
      in
      let d = scan nconsts in
      if d && metrics then Obs.Metrics.incr m_prune_dominated;
      d
    and survives a =
      let d = derived st ar ~nconsts swap a in
      let rec tryd = function
        | [] ->
            let cand = candidates st swap a in
            let m = Array.length cand in
            let rec rest i =
              i < m
              &&
              let r = cand.(i) in
              if List.mem r d then rest (i + 1)
              else try_reply a r || rest (i + 1)
            in
            rest 0
        | r :: more -> try_reply a r || tryd more
      in
      tryd d
    and try_reply a r =
      let nl, nr = if swap then (r, a) else (a, r) in
      (if exist then ext_ok_exist st ar nl nr else ext_ok st ar nl nr)
      && begin
           Arena.push ar nl nr;
           let v = wins (k - 1) in
           Arena.pop ar;
           v
         end
    in
    go 0
  in
  let result = (try Some (wins k0) with Budget_exceeded -> None) in
  (result, !nodes, Pmemo.size memo)

let run_general st ?(nodes0 = 0) ~budget k0 =
  run st ~exist:false ~metrics:true ~nodes0 ~budget k0

let run_existential st ~budget k0 =
  let r, _, _ = run st ~exist:true ~metrics:false ~nodes0:0 ~budget k0 in
  r
