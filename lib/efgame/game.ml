type side = Left | Right
type move = { side : side; element : string }
type verdict = Equiv | Not_equiv | Unknown
type mode = Full | Duplicator_limited of int

type config = {
  left : Fc.Structure.t;
  right : Fc.Structure.t;
  consts : Partial_iso.entry list;
  left_moves : string list; (* candidate Spoiler elements, longest first *)
  right_moves : string list;
  left_all : string list; (* full universes *)
  right_all : string list;
}

let by_desc_length a b =
  let c = compare (String.length b) (String.length a) in
  if c <> 0 then c else String.compare a b

let make ?sigma w v =
  let sigma =
    match sigma with
    | Some cs -> List.sort_uniq Char.compare cs
    | None -> List.sort_uniq Char.compare (Words.Word.alphabet w @ Words.Word.alphabet v)
  in
  let left = Fc.Structure.make ~sigma w and right = Fc.Structure.make ~sigma v in
  let consts = Partial_iso.constant_entries left right in
  let const_values side_proj =
    List.filter_map side_proj consts |> List.sort_uniq String.compare
  in
  let lconsts = const_values fst and rconsts = const_values snd in
  let movable universe skip =
    List.filter (fun f -> not (List.mem f skip)) universe |> List.sort by_desc_length
  in
  {
    left;
    right;
    consts;
    left_moves = movable (Fc.Structure.universe left) lconsts;
    right_moves = movable (Fc.Structure.universe right) rconsts;
    left_all = Fc.Structure.universe left;
    right_all = Fc.Structure.universe right;
  }

let left_word cfg = Fc.Structure.word cfg.left
let right_word cfg = Fc.Structure.word cfg.right
let base_partial_iso cfg = Partial_iso.holds cfg.consts
let structures cfg = (cfg.left, cfg.right)
let constant_entries cfg = cfg.consts

(* ------------------------------------------------------------------ *)
(* Duplicator candidates.                                              *)

(* Orient an entry so that [fst] is the Spoiler's side. *)
let orient side (x, y) = if side = Left then (x, y) else (y, x)
let unorient side (x, y) = if side = Left then (x, y) else (y, x)

let derived_candidates entries side a =
  (* Responses forced (or strongly suggested) by the concatenation pattern
     of the position: if a relates to already-played elements by R∘, the
     response must relate to their partners the same way. *)
  let oriented = List.map (orient side) entries in
  let known = List.filter_map (fun (x, y) -> match (x, y) with Some x, Some y -> Some (x, y) | _ -> None) oriented in
  let out = ref [] in
  let add r = if not (List.mem r !out) then out := r :: !out in
  List.iter
    (fun (xi, yi) ->
      List.iter
        (fun (xj, yj) ->
          (* a = xi · xj  ⇒  respond yi · yj *)
          if xi ^ xj = a then add (yi ^ yj);
          (* xi = a · xj  ⇒  respond yi with suffix yj removed *)
          if
            String.length xi = String.length a + String.length xj
            && xi = a ^ xj
            && Words.Word.is_suffix ~suffix:yj yi
          then add (String.sub yi 0 (String.length yi - String.length yj));
          (* xi = xj · a  ⇒  respond yi with prefix yj removed *)
          if
            String.length xi = String.length xj + String.length a
            && xi = xj ^ a
            && Words.Word.is_prefix ~prefix:yj yi
          then add (String.sub yi (String.length yj) (String.length yi - String.length yj)))
        known)
    known;
  List.rev !out

let score ~from_word ~to_word a r =
  if r = a then (-1, 0, 0)
  else
    let lf = String.length from_word and lt = String.length to_word in
    let la = String.length a and lr = String.length r in
    let status_penalty =
      (if Words.Word.is_prefix ~prefix:a from_word = Words.Word.is_prefix ~prefix:r to_word then 0
       else 1)
      + if Words.Word.is_suffix ~suffix:a from_word = Words.Word.is_suffix ~suffix:r to_word then 0
        else 1
    in
    let mirror = abs (lt - lr - (lf - la)) and direct = abs (lr - la) in
    (0, status_penalty, min mirror direct)

let response_candidates cfg entries side a =
  let from_word, to_word, universe =
    match side with
    | Left -> (left_word cfg, right_word cfg, cfg.right_all)
    | Right -> (right_word cfg, left_word cfg, cfg.left_all)
  in
  let to_struct = match side with Left -> cfg.right | Right -> cfg.left in
  let derived =
    derived_candidates entries side a |> List.filter (Fc.Structure.mem to_struct)
  in
  let rest =
    List.filter (fun r -> not (List.mem r derived)) universe
    |> List.map (fun r -> (score ~from_word ~to_word a r, r))
    |> List.sort compare |> List.map snd
  in
  derived @ rest

(* ------------------------------------------------------------------ *)
(* Solver.                                                             *)

(* Shared with [Unary] (the registry dedups by name): every node
   expansion lands in the bucket of its rounds-remaining, so the merged
   vector sums to the scan's global node total; the prune counters
   record why subtrees were never expanded. *)
let m_nodes = Obs.Metrics.vec ~buckets:8 "game.nodes_by_k"
let m_prune_dominated = Obs.Metrics.counter "game.prune.dominated"
let m_prune_forced = Obs.Metrics.counter "game.prune.forced"
let m_prune_unsat = Obs.Metrics.counter "game.prune.unsat"

exception Budget_exceeded

type stats = {
  nodes : int;
  memo_entries : int;
  cache_hits : int;
  cache_misses : int;
}

(* Both words powers of the same single letter (and nonempty, so the
   letter constant is defined on both sides): eligible for the arithmetic
   fast path of [Unary]. *)
let unary_of cfg =
  let w = Fc.Structure.word cfg.left and v = Fc.Structure.word cfg.right in
  if w = "" || v = "" then None
  else
    let c = w.[0] in
    if String.for_all (Char.equal c) w && String.for_all (Char.equal c) v then
      Some (c, String.length w, String.length v)
    else None

type solver = {
  cfg : config;
  mode : mode;
  budget : int;
  memo : (int * (string * string) list, bool) Hashtbl.t;
  cache : Cache.t option;
  interner : Position.interner;
  cmemo : (int * int, bool) Hashtbl.t; (* (rounds, position id), cached path *)
  unary : (char * int * int) option;
  repr : Repr.t;
  packed : Packed.gstate option Lazy.t;
      (* packed replay of the seed path; only built (and only used) for
         cache-less full-mode solves from the empty position — the other
         paths either need the shared table's string keys at every node
         or a candidate-width limit the packed general search does not
         carry. Lazy because solver handles are also created by callers
         that never hit the eligible branch (strategies, winning lines). *)
  mutable nodes : int;
}

let solver ?(mode = Full) ?(budget = 50_000_000) ?cache ?repr cfg =
  let repr = match repr with Some r -> r | None -> Repr.default () in
  {
    cfg;
    mode;
    budget;
    memo = Hashtbl.create 64;
    cache;
    interner = Position.interner ();
    cmemo = Hashtbl.create 64;
    unary = (match cache with Some _ -> unary_of cfg | None -> None);
    repr;
    packed =
      lazy
        (match (repr, cache, mode) with
        | Repr.Packed, None, Full -> Packed.make_gstate cfg.left cfg.right cfg.consts
        | _ -> None);
    nodes = 0;
  }

let width_of_mode = function Full -> max_int | Duplicator_limited n -> n

(* Forced Duplicator replies in the general game (string form). When the
   Spoiler move [a] occurs in a concatenation pattern with two known
   entries, triple-consistency of the partial isomorphism determines the
   reply: a = xi·xj forces yi·yj; xi = a·xj forces the prefix of yi
   complementing yj; xi = xj·a forces the suffix; xi = a·a forces the
   half of yi. Every other candidate fails [Partial_iso.extension_ok],
   so restricting the scan to the forced value (or refuting the move
   when the forcings conflict or fall outside the structure) is exact. *)
let forced_response cfg entries side a =
  let to_struct = match side with Left -> cfg.right | Right -> cfg.left in
  let oriented = List.map (orient side) entries in
  let known =
    List.filter_map
      (fun (x, y) -> match (x, y) with Some x, Some y -> Some (x, y) | _ -> None)
      oriented
  in
  let forced = ref None in
  let force r =
    if not (Fc.Structure.mem to_struct r) then raise Exit
    else
      match !forced with
      | None -> forced := Some r
      | Some r' -> if r <> r' then raise Exit
  in
  try
    List.iter
      (fun (xi, yi) ->
        let li = String.length xi and la = String.length a in
        if li = 2 * la && xi = a ^ a then begin
          let ly = String.length yi in
          if ly land 1 = 1 then raise Exit;
          let h = String.sub yi 0 (ly / 2) in
          if yi = h ^ h then force h else raise Exit
        end;
        List.iter
          (fun (xj, yj) ->
            if xi ^ xj = a then force (yi ^ yj);
            let lj = String.length xj in
            if li = la + lj && xi = a ^ xj then
              if Words.Word.is_suffix ~suffix:yj yi then
                force (String.sub yi 0 (String.length yi - String.length yj))
              else raise Exit;
            if li = lj + la && xi = xj ^ a then
              if Words.Word.is_prefix ~prefix:yj yi then
                force
                  (String.sub yi (String.length yj)
                     (String.length yi - String.length yj))
              else raise Exit)
          known)
      known;
    match !forced with None -> `Unconstrained | Some r -> `Forced r
  with Exit -> `Unsat

let solver_run s pairs0 k0 =
  let cfg = s.cfg in
  let memo = s.memo in
  let nodes = ref s.nodes in
  let limit = width_of_mode s.mode in
  let sigma = Fc.Structure.sigma cfg.left in
  let lw = left_word cfg and rw = right_word cfg in
  let cache_hits = ref 0 and cache_misses = ref 0 in
  (* ---------------- seed path: no transposition table ---------------- *)
  let rec wins pairs entries k =
    incr nodes;
    Obs.Metrics.vec_incr m_nodes k;
    if !nodes > s.budget then raise Budget_exceeded;
    if k = 0 then true
    else
      let key = (k, List.sort compare pairs) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          let result =
            spoiler_side wins Left pairs entries k
            && spoiler_side wins Right pairs entries k
          in
          Hashtbl.replace memo key result;
          result
  (* --------------- cached path: canonical keys + table --------------- *)
  and cwins pairs entries k =
    incr nodes;
    Obs.Metrics.vec_incr m_nodes k;
    if !nodes > s.budget then raise Budget_exceeded;
    if k = 0 then true
    else
      let key = Position.key ~sigma ~left:lw ~right:rw pairs in
      let id = Position.intern s.interner key in
      match Hashtbl.find_opt s.cmemo (k, id) with
      | Some r -> r
      | None -> (
          let cache = Option.get s.cache in
          match Cache.lookup cache key ~k with
          | Some r ->
              incr cache_hits;
              Hashtbl.replace s.cmemo (k, id) r;
              r
          | None ->
              incr cache_misses;
              let result =
                cspoiler_side Left pairs entries k
                && cspoiler_side Right pairs entries k
              in
              Hashtbl.replace s.cmemo (k, id) result;
              if result || limit = max_int then
                Cache.store cache key ~k result;
              result)
  and spoiler_side recur side pairs entries k =
    let moves = match side with Left -> cfg.left_moves | Right -> cfg.right_moves in
    let played (a, b) = match side with Left -> a | Right -> b in
    List.for_all
      (fun a ->
        if List.exists (fun p -> played p = a) pairs then begin
          Obs.Metrics.incr m_prune_dominated;
          true (* dominated move *)
        end
        else
          let candidates = response_candidates cfg entries side a in
          let candidates =
            if limit = max_int then candidates
            else
              let derived = derived_candidates entries side a in
              let d = List.length derived in
              List.filteri (fun i _ -> i < d + limit) candidates
          in
          List.exists
            (fun r ->
              let entry = unorient side (Some a, Some r) in
              Partial_iso.extension_ok entries entry
              &&
              let pair = unorient side (a, r) in
              recur (pair :: pairs) (entry :: entries) (k - 1))
            candidates)
      moves
  and cspoiler_side side pairs entries k =
    let moves = match side with Left -> cfg.left_moves | Right -> cfg.right_moves in
    let played (a, b) = match side with Left -> a | Right -> b in
    let try_reply a r =
      let entry = unorient side (Some a, Some r) in
      Partial_iso.extension_ok entries entry
      &&
      let pair = unorient side (a, r) in
      cwins (pair :: pairs) (entry :: entries) (k - 1)
    in
    List.for_all
      (fun a ->
        if List.exists (fun p -> played p = a) pairs then begin
          Obs.Metrics.incr m_prune_dominated;
          true (* dominated move *)
        end
        else
          match forced_response cfg entries side a with
          | `Unsat ->
              Obs.Metrics.incr m_prune_unsat;
              false
          | `Forced r ->
              Obs.Metrics.incr m_prune_forced;
              try_reply a r
          | `Unconstrained ->
              let candidates = response_candidates cfg entries side a in
              let candidates =
                if limit = max_int then candidates
                else List.filteri (fun i _ -> i < limit) candidates
              in
              List.exists (fun r -> try_reply a r) candidates)
      moves
  in
  let entries0 =
    List.fold_left (fun acc (a, b) -> (Some a, Some b) :: acc) cfg.consts pairs0
  in
  let top_key =
    match s.cache with
    | None -> None
    | Some _ -> (
        match s.unary with
        | Some (_, p, q) ->
            Some
              (Position.unary_key ~p ~q
                 (List.map
                    (fun (a, b) -> (String.length a, String.length b))
                    pairs0))
        | None -> Some (Position.key ~sigma ~left:lw ~right:rw pairs0))
  in
  let result, memo_entries =
    if not (Partial_iso.holds entries0) then (Some false, Hashtbl.length memo)
    else
      (* an exact verdict outranks any recorded budget exhaustion (a
         later, better-funded search may have solved the position after
         an earlier one starved) *)
      let exact =
        match (s.cache, top_key) with
        | Some cache, Some key -> Cache.lookup cache key ~k:k0
        | _ -> None
      in
      match (s.cache, top_key) with
      | Some _, Some _ when exact <> None ->
          incr cache_hits;
          (exact, Hashtbl.length memo)
      | Some cache, Some key
        when Cache.unknown_reusable cache key ~k:k0 ~width:limit
               ~budget:s.budget ->
          (* a weaker-or-equal search already exhausted at least this
             budget here: rerunning cannot do better *)
          incr cache_hits;
          (None, Hashtbl.length memo)
      | Some cache, Some key -> (
          let on_budget () =
            Cache.store_unknown cache key ~k:k0 ~width:limit ~budget:s.budget
          in
          match s.unary with
          | Some (_, p, q) -> (
              let init =
                List.map
                  (fun (a, b) -> (String.length a, String.length b))
                  pairs0
              in
              let before = Cache.stats cache in
              let usolve =
                match s.repr with
                | Repr.Packed -> Packed.solve_unary
                | Repr.Boxed -> Unary.solve
              in
              let r, n, m = usolve ~cache ~limit ~budget:s.budget ~p ~q ~init k0 in
              let after = Cache.stats cache in
              cache_hits := !cache_hits + (after.Cache.hits - before.Cache.hits);
              cache_misses :=
                !cache_misses + (after.Cache.misses - before.Cache.misses);
              nodes := !nodes + n;
              match r with
              | Some _ -> (r, m)
              | None ->
                  on_budget ();
                  (None, m))
          | None -> (
              match cwins pairs0 entries0 k0 with
              | r -> (Some r, Position.interned s.interner)
              | exception Budget_exceeded ->
                  on_budget ();
                  (None, Position.interned s.interner)))
      | _ -> (
          match (if pairs0 = [] then Lazy.force s.packed else None) with
          | Some g ->
              let r, n, m =
                Packed.run_general g ~nodes0:!nodes ~budget:s.budget k0
              in
              nodes := n;
              (r, m)
          | None -> (
              match wins pairs0 entries0 k0 with
              | r -> (Some r, Hashtbl.length memo)
              | exception Budget_exceeded -> (None, Hashtbl.length memo)))
  in
  s.nodes <- !nodes;
  ( result,
    {
      nodes = !nodes;
      memo_entries;
      cache_hits = !cache_hits;
      cache_misses = !cache_misses;
    } )

let to_verdict mode result =
  match (result, mode) with
  | Some true, _ -> Equiv
  | Some false, Full -> Not_equiv
  | Some false, Duplicator_limited _ -> Unknown
  | None, _ -> Unknown

let solver_wins s pairs k = to_verdict s.mode (fst (solver_run s pairs k))

let solver_stats s =
  let ch, cm =
    match s.cache with
    | None -> (0, 0)
    | Some c ->
        let st = Cache.stats c in
        (st.Cache.hits, st.Cache.misses)
  in
  {
    nodes = s.nodes;
    memo_entries = Hashtbl.length s.memo + Position.interned s.interner;
    cache_hits = ch;
    cache_misses = cm;
  }

let spoiler_moves cfg = function
  | Left -> cfg.left_moves
  | Right -> cfg.right_moves

let decide_with_stats ?(mode = Full) ?(budget = 50_000_000) ?cache ?repr cfg k =
  let s = solver ~mode ~budget ?cache ?repr cfg in
  let result, stats = solver_run s [] k in
  (to_verdict mode result, stats)

let decide ?mode ?budget ?cache ?repr cfg k =
  fst (decide_with_stats ?mode ?budget ?cache ?repr cfg k)

let equiv ?sigma ?mode ?budget ?cache ?repr w v k =
  decide ?mode ?budget ?cache ?repr (make ?sigma w v) k

(* ------------------------------------------------------------------ *)
(* Principal variation extraction.                                     *)

let winning_line ?(budget = 50_000_000) cfg k0 =
  if not (base_partial_iso cfg) then Some []
  else
    let memo = Hashtbl.create 1024 in
    let nodes = ref 0 in
    let rec wins pairs entries k =
      incr nodes;
      if !nodes > budget then raise Budget_exceeded;
      if k = 0 then true
      else
        let key = (k, List.sort compare pairs) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
            let result = side_ok Left pairs entries k && side_ok Right pairs entries k in
            Hashtbl.replace memo key result;
            result
    and side_ok side pairs entries k =
      let moves = match side with Left -> cfg.left_moves | Right -> cfg.right_moves in
      let played (a, b) = match side with Left -> a | Right -> b in
      List.for_all
        (fun a ->
          List.exists (fun p -> played p = a) pairs
          || List.exists
               (fun r ->
                 let entry = unorient side (Some a, Some r) in
                 Partial_iso.extension_ok entries entry
                 && wins (unorient side (a, r) :: pairs) (entry :: entries) (k - 1))
               (response_candidates cfg entries side a))
        moves
    in
    let find_breaking_move pairs entries k =
      let try_side side =
        let moves = match side with Left -> cfg.left_moves | Right -> cfg.right_moves in
        let played (a, b) = match side with Left -> a | Right -> b in
        List.find_opt
          (fun a ->
            (not (List.exists (fun p -> played p = a) pairs))
            && not
                 (List.exists
                    (fun r ->
                      let entry = unorient side (Some a, Some r) in
                      Partial_iso.extension_ok entries entry
                      && wins (unorient side (a, r) :: pairs) (entry :: entries) (k - 1))
                    (response_candidates cfg entries side a)))
          moves
        |> Option.map (fun a -> { side; element = a })
      in
      match try_side Left with Some m -> Some m | None -> try_side Right
    in
    try
      if wins [] cfg.consts k0 then None
      else begin
        let rec build pairs entries k acc =
          if k = 0 then List.rev acc
          else
            match find_breaking_move pairs entries k with
            | None -> List.rev acc
            | Some m ->
                (* Choose the Duplicator response that at least preserves the
                   partial isomorphism, if any, to continue the line. *)
                let resp =
                  List.find_opt
                    (fun r -> Partial_iso.extension_ok entries (unorient m.side (Some m.element, Some r)))
                    (response_candidates cfg entries m.side m.element)
                in
                (match resp with
                | None -> List.rev ((m, None) :: acc)
                | Some r ->
                    let entry = unorient m.side (Some m.element, Some r) in
                    build
                      (unorient m.side (m.element, r) :: pairs)
                      (entry :: entries) (k - 1)
                      ((m, Some r) :: acc))
        in
        Some (build [] cfg.consts k0 [])
      end
    with Budget_exceeded -> None

let pp_move ppf m =
  Format.fprintf ppf "%s:%a"
    (match m.side with Left -> "L" | Right -> "R")
    Words.Word.pp m.element

let pp_verdict ppf = function
  | Equiv -> Format.pp_print_string ppf "≡"
  | Not_equiv -> Format.pp_print_string ppf "≢"
  | Unknown -> Format.pp_print_string ppf "?"
