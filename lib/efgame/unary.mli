(** Specialized EF-game solver for unary words (c^p vs c^q).

    Over a single letter, the structure 𝔄_{c^p} is isomorphic to
    ({0, …, p}, +|≤p, 0, 1): factors are determined by their lengths and
    every concatenation pattern is an additive equation. This engine
    replays the exact search of {!Game} in that arithmetic representation
    — no string allocation anywhere on the hot path — with

    - positions as sorted lists of (left-length, right-length) pairs,
      memoized locally and in a shared {!Cache};
    - {e forced-reply pruning}: when Spoiler's move a participates in an
      additive pattern with two already-played entries (a = x + u,
      x = a + u, or x = a + a), triple-consistency of the partial
      isomorphism pins Duplicator's reply to a single value (or to none,
      refuting the move immediately), so the candidate scan collapses
      from O(q) to O(1). This is exact: every other candidate would fail
      [Partial_iso.extension_ok];
    - dominance pruning of Spoiler moves that repeat a played length on
      the same side (the reply is forced and the position unchanged),
      mirroring the seed solver's skip.

    Verdicts agree with {!Game.decide} on every unary instance: the
    search is the same ∀∃ recursion over the same move/candidate space,
    only the representation differs. *)

exception Unsat
(** Raised by {!forced_reply} when a Spoiler move refutes the position:
    its forced replies conflict or fall outside the reply range. *)

val solve :
  ?cache:Cache.t ->
  ?store_depth:int ->
  ?limit:int ->
  ?budget:int ->
  p:int ->
  q:int ->
  init:(int * int) list ->
  int ->
  bool option * int * int
(** [solve ~p ~q ~init k]: can Duplicator win [k] more rounds of the game
    on c^p vs c^q from the position given by the played [init] pairs of
    lengths? Requires [p ≥ 1] and [q ≥ 1] (so the letter constant is
    defined on both sides). [limit] is the Duplicator candidate width
    ([max_int], the default, is the full search; with a finite limit,
    [Some true] stays sound and [Some false] only means the truncated
    search failed). [store_depth] bounds the position depth (played
    pairs) at which the shared [cache] is consulted and written — deeper
    nodes use only the solve-local memo. Depth gating is a pure
    time/space trade-off: within one solve the local memo already
    deduplicates, and across solves only shallow positions are ever
    re-reachable, so verdicts are unaffected. Returns
    [(result, nodes, memo_entries)]; [result] is [None] when the node
    [budget] is exhausted. *)

(** {1 Search internals}

    The exact move/candidate machinery of {!solve}, exposed so the packed
    engine ({!Packed.solve_unary}) can replay the identical search over
    its arena representation. Any change here changes both engines in
    lockstep — which is precisely how they stay node-for-node identical. *)

val ext_ok : (int * int) list -> int -> int -> bool
(** Partial-isomorphism extension check in arithmetic form; [entries]
    include the constants [(0, 0)] and [(1, 1)]. *)

val forced_reply : (int * int) list -> other_max:int -> int -> int option
(** The reply pinned down by additive patterns, [None] when
    unconstrained; raises {!Unsat} when no reply can preserve the
    partial isomorphism. *)

val candidate_order : mine_max:int -> other_max:int -> int -> int list
(** Duplicator reply order for a Spoiler move (exhaustive, heuristically
    ranked). *)

val candidate_table : mine_max:int -> other_max:int -> int -> int list
(** Per-move memoization of {!candidate_order} (one table per partial
    application). *)

val closure : int list -> max_v:int -> int list
(** Additive closure of played coordinates, clipped to [2..max_v]. *)

val w1 : (int * int) list -> p:int -> q:int -> bool
(** Exact closed form for the 1-round game from the given entries. *)

val move_order : int -> int list
(** Spoiler move order over [2..m] (hi/lo interleaved). *)
