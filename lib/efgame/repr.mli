(** Solver engine selection: boxed (string/list) vs packed (succinct).

    Both engines run the same ∀∃ search over the same move and candidate
    orders and are verdict-identical (node-for-node, in fact — see the
    identity tests and the DESIGN.md note); they differ only in how
    positions, factors and partial isomorphisms are represented. The
    boxed engine is the readable reference; the packed engine
    ({!Packed}) is the hot path.

    The session default comes from the [EFGAME_ENGINE] environment
    variable ([boxed] or [packed]; packed when unset) and can be
    overridden programmatically ({!set_default}) or per call via the
    [?repr] parameters of {!Game}, {!Existential} and {!Witness}. *)

type t = Boxed | Packed

val default : unit -> t
(** The engine used when a [?repr] argument is omitted. *)

val set_default : t -> unit
(** Override the session default (the CLI's [--engine] flag). *)

val of_string : string -> (t, string) result
val to_string : t -> string
val pp : Format.formatter -> t -> unit
