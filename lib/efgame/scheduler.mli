(** Work-stealing execution of an indexed work space over Domains.

    Workers claim contiguous chunks of [0, total) from a single shared
    atomic index — the classic guided self-scheduling discipline: a claim
    takes a 1/(2·jobs) share of the {e remaining} space, clamped to
    [\[min_chunk, max_chunk\]], so early chunks are large (few atomic
    operations) and the tail is fine-grained (stragglers cannot strand a
    large chunk behind one slow item). This replaces barrier-style
    [Parallel.map] rounds for scans whose items have wildly heterogeneous
    cost: no worker ever waits at a row boundary while another finishes a
    deep search.

    The limit is {e shrinkable}: [shrink_limit t i] abandons every index
    ≥ i that has not started, at item granularity (in-flight chunks
    re-check the limit before each item). Because the limit only ever
    decreases, when [run] returns every index below the final limit has
    been processed exactly once, and no index at or above it was started
    after the shrink — precisely the contract a minimal-witness scan
    needs for sound early exit.

    {b Supervision.} [run] is crash-tolerant: an item whose execution
    raises is retried ([retries] times, default 3) by being requeued for
    any worker to pick up, and a worker domain that dies outside an item
    (a crash in the claim path) is absorbed — the surviving workers
    drain its share, and if every domain dies the calling domain
    finishes the space itself, degraded to sequential. Only an item that
    fails {e every} attempt kills the run: its original exception is
    reraised after the rest of the space has drained, so one poisoned
    item cannot silently punch a hole in an exhaustive scan. Faults and
    crashes are counted ({!faults}, {!crashes}, plus [Obs] counters) and
    logged.

    {b Cooperative stop.} {!request_stop} (or [run]'s [stop] callback
    returning true) makes workers finish their current item and exit;
    unstarted work is left unclaimed. {!completed} stays exact, so a
    checkpoint taken after a stopped run captures precisely the finished
    prefix of the work — the resumable-state contract behind
    signal-driven checkpointing. *)

type t

val create :
  ?min_chunk:int ->
  ?max_chunk:int ->
  ?retries:int ->
  jobs:int ->
  total:int ->
  unit ->
  t
(** A scheduler over the index space [0, total). [min_chunk] defaults to
    1, [max_chunk] to 256 (capping chunk size keeps the inter-chunk
    [tick] callback of {!run} reasonably frequent even at the start of a
    large space). [retries] (default 3) bounds how many times a failing
    item is re-attempted before its exception is considered permanent. *)

val run : ?tick:(unit -> unit) -> ?stop:(unit -> bool) -> t -> (int -> unit) -> unit
(** [run t f] executes [f i] for every [i] below the (possibly shrinking)
    limit, over [jobs] worker domains (worker 0 runs inline on the
    calling domain). [f] must be domain-safe, and item-idempotent under
    retry: a failed [f i] may run again, on any worker. [tick] is
    invoked by worker 0 between its chunks — a single-writer hook for
    periodic work such as table checkpoints. [stop] is polled at chunk
    boundaries and before each item; once it returns true (or
    {!request_stop} is called) workers wind down without claiming new
    work. An item still failing after [retries] re-attempts reraises its
    original exception once the rest of the space has drained. A
    scheduler is single-shot: do not call [run] twice. *)

val shrink_limit : t -> int -> unit
(** Abandon all indices ≥ the given value (atomic monotone min;
    concurrent shrinks compose to the smallest). Indices already below
    the new limit are unaffected and will still be processed. *)

val request_stop : t -> unit
(** Ask every worker to wind down after its current item. Unlike
    {!shrink_limit} this is not about the answer's soundness — it is the
    cooperative-cancellation hook for signals and deadlines. *)

val stopped : t -> bool
(** Has a stop been requested (by {!request_stop} or [run]'s [stop])? *)

val limit : t -> int
(** Current limit: [total] until someone shrinks it. *)

val completed : t -> int
(** Number of items completed successfully so far. *)

val chunks : t -> int
(** Number of chunks claimed so far (scheduling-overhead telemetry). *)

val faults : t -> int
(** Item executions that raised (and were retried or abandoned). *)

val crashes : t -> int
(** Worker domains that died outside an item and were absorbed. *)
