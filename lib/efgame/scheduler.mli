(** Work-stealing execution of an indexed work space over Domains.

    Workers claim contiguous chunks of [0, total) from a single shared
    atomic index — the classic guided self-scheduling discipline: a claim
    takes a 1/(2·jobs) share of the {e remaining} space, clamped to
    [\[min_chunk, max_chunk\]], so early chunks are large (few atomic
    operations) and the tail is fine-grained (stragglers cannot strand a
    large chunk behind one slow item). This replaces barrier-style
    [Parallel.map] rounds for scans whose items have wildly heterogeneous
    cost: no worker ever waits at a row boundary while another finishes a
    deep search.

    The limit is {e shrinkable}: [shrink_limit t i] abandons every index
    ≥ i that has not started, at item granularity (in-flight chunks
    re-check the limit before each item). Because the limit only ever
    decreases, when [run] returns every index below the final limit has
    been processed exactly once, and no index at or above it was started
    after the shrink — precisely the contract a minimal-witness scan
    needs for sound early exit. *)

type t

val create :
  ?min_chunk:int -> ?max_chunk:int -> jobs:int -> total:int -> unit -> t
(** A scheduler over the index space [0, total). [min_chunk] defaults to
    1, [max_chunk] to 256 (capping chunk size keeps the inter-chunk
    [tick] callback of {!run} reasonably frequent even at the start of a
    large space). *)

val run : ?tick:(unit -> unit) -> t -> (int -> unit) -> unit
(** [run t f] executes [f i] for every [i] below the (possibly shrinking)
    limit, over [jobs] worker domains (worker 0 runs inline on the
    calling domain). [f] must be domain-safe. [tick] is invoked by worker
    0 between its chunks — a single-writer hook for periodic work such as
    table checkpoints. Reraises the first worker exception after joining
    all workers. A scheduler is single-shot: do not call [run] twice. *)

val shrink_limit : t -> int -> unit
(** Abandon all indices ≥ the given value (atomic monotone min;
    concurrent shrinks compose to the smallest). Indices already below
    the new limit are unaffected and will still be processed. *)

val limit : t -> int
(** Current limit: [total] until someone shrinks it. *)

val completed : t -> int
(** Number of items processed so far (for progress reporting). *)

val chunks : t -> int
(** Number of chunks claimed so far (scheduling-overhead telemetry). *)
