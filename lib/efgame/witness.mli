(** Witness search over unary words (Lemma 3.4): minimal pairs p < q with
    [a^p ≡_k a^q], and ≡_k equivalence classes of initial segments. *)

type engine =
  | Seed  (** the original memoized search, no transposition table *)
  | Cached of Cache.t
      (** transposition-table-backed search; unary pairs dispatch to the
          arithmetic fast path ({!Unary.solve}) directly *)
  | Parallel of Cache.t * int
      (** like [Cached], but scans fan the per-[q] pair checks out over
          the given number of worker domains sharing the one table *)

type scan_outcome =
  | Found of int * int  (** the minimal pair within the scanned range *)
  | Exhausted of int  (** no pair with q ≤ bound; all verdicts were exact *)
  | Inconclusive of int * (int * int) list
      (** bound, plus the pairs on which the solver ran out of budget *)

val minimal_pair :
  ?budget:int ->
  ?engine:engine ->
  ?on_q:(int -> unit) ->
  k:int ->
  max_n:int ->
  unit ->
  scan_outcome
(** Scan pairs in order of q, then p (so the first hit minimizes the
    larger word). Each pair runs through the monotonicity prefilter
    first: ≡_k requires ≡_j for every j < k, and the low-round games
    refute most pairs at a fraction of the k-round cost. All skips rest
    on exact [Not_equiv] verdicts, so an [Exhausted] outcome is a sound
    exhaustive claim. [on_q] is a progress callback invoked as each new
    value of [q] starts (long frontier scans report through it). *)

val classes :
  ?budget:int -> ?engine:engine -> k:int -> max_n:int -> unit ->
  int list list option
(** ≡_k-classes of {a^0, …, a^max_n}, each sorted ascending, classes
    ordered by minimum. [None] when some comparison came back [Unknown]. *)

val verify_pair :
  ?budget:int -> ?engine:engine -> k:int -> int -> int -> Game.verdict
(** [verify_pair ~k p q]: decide [a^p ≡_k a^q] with a full search under
    the chosen engine (default [Seed]). All engines agree on every
    instance; they differ only in speed. *)

val verify_pair_sound : ?budget:int -> ?width:int -> k:int -> int -> int -> Game.verdict
(** One-sided verification using the Duplicator-restricted search (default
    [width] 6): [Equiv] answers are sound; anything else is [Unknown]. For
    pairs beyond the full solver's reach. *)

val classes_words :
  ?budget:int -> ?engine:engine -> sigma:char list -> k:int -> max_len:int ->
  unit -> string list list option
(** ≡_k classes of all words over [sigma] up to [max_len] — the finite
    index underlying Theorem 3.2. [None] on budget exhaustion. *)
