(** Witness search over unary words (Lemma 3.4): minimal pairs p < q with
    [a^p ≡_k a^q], and ≡_k equivalence classes of initial segments.

    Scans run over the linearized (p, q) triangle through the
    work-stealing {!Scheduler} — pair granularity, no per-q barrier — and
    under a [Cached]/[Parallel] engine they read and write the shared
    transposition table, so a table persisted by a previous run
    ({!Persist}) makes a repeated or resumed scan incremental. *)

type engine =
  | Seed  (** the original memoized search, no transposition table *)
  | Cached of Cache.t
      (** transposition-table-backed search; unary pairs dispatch to the
          arithmetic fast path ({!Unary.solve}) directly *)
  | Parallel of Cache.t * int
      (** like [Cached], but scans steal pair-granularity chunks of the
          (p, q) triangle across the given number of worker domains
          sharing the one table *)

type scan_outcome =
  | Found of int * int  (** the minimal pair within the scanned range *)
  | Exhausted of int  (** no pair with q ≤ bound; all verdicts were exact *)
  | Inconclusive of int * (int * int) list
      (** bound, plus the pairs on which the solver ran out of budget,
          sorted by (q, p) *)
  | Interrupted of int
      (** the scan was stopped (signal, deadline, {!Scheduler.request_stop})
          after completing this many pairs; no claim — not even minimality —
          is made about the space. Completed verdicts are in the engine's
          table and a resumed run re-derives the rest. *)

type scan_stats = {
  pairs : int;  (** pair verdicts computed (early exit skips the rest) *)
  nodes : int;  (** solver search nodes expanded, all engines *)
  chunks : int;  (** scheduler chunks claimed *)
  cache_hits : int;  (** transposition-table hits during this scan *)
  cache_misses : int;  (** and misses; both 0 under [Seed] *)
}

val scan :
  ?budget:int ->
  ?engine:engine ->
  ?store_depth:int ->
  ?range:int * int ->
  ?on_q:(int -> unit) ->
  ?on_tick:(completed:int -> unit) ->
  ?stop:(unit -> bool) ->
  ?repr:Repr.t ->
  k:int ->
  max_n:int ->
  unit ->
  scan_outcome * scan_stats
(** Exhaustive scan of all pairs 0 ≤ p < q ≤ [max_n] in (q, p) order
    (so the first hit minimizes the larger word). Each pair runs through
    the monotonicity prefilter first: ≡_k requires ≡_j for every j < k,
    and the low-round games refute most pairs at a fraction of the
    k-round cost. All skips rest on exact [Not_equiv] verdicts, so an
    [Exhausted] outcome is a sound exhaustive claim.

    When a pair is [Found] mid-scan, outstanding work at larger indices
    is cancelled via the scheduler's shrinkable limit; every smaller
    index still completes, so the reported pair is minimal among exact
    verdicts. [store_depth] (default 0: top-level pair verdicts only)
    bounds the position depth at which pair solves touch the shared
    table — verdict-neutral, see {!Unary.solve}. Depth 0 is the sweet
    spot for scans: within a cold scan deeper entries are never
    re-reachable (keys embed the pair), while the pair-level verdicts
    are exactly what a warm restart replays against.

    [range (lo, hi)] restricts the scan to the half-open index window
    [lo, hi) of the linearized triangle (default: the whole triangle,
    [0, max_n·(max_n+1)/2)); [Invalid_argument] if the window falls
    outside it. This is the shard and incremental-frontier primitive:
    indices below [M·(M+1)/2] are exactly the pairs with q ≤ M, so a
    table carrying a proven bound M resumes with
    [range (M·(M+1)/2, total)], and a distributed scan hands each
    worker a disjoint window ({!Dist}). With a window set, the
    outcome's claims shrink to it: [Found] is the minimal pair
    {e within the window}, [Exhausted] says no pair {e in the window}
    (the reported bound is still [max_n] — combining windows back into
    a whole-triangle claim is the caller's bookkeeping).

    [on_q] is a progress callback invoked as the scan first reaches each
    new value of [q] (under work stealing, values may be skipped — the
    callback observes a nondecreasing sequence). [on_tick] is invoked by
    the inline worker between chunks with the number of pairs completed —
    the hook long-running frontier scans use for periodic table
    checkpoints ({!Persist.save}). [stop] is polled at item granularity;
    once it returns true the scan winds down cooperatively and the
    outcome is [Interrupted] — the signal/deadline hook for crash-safe
    checkpoint-then-exit.

    [?repr] selects the solver engine for every pair decided by the scan
    (default {!Repr.default}); verdict tables are bit-identical across
    engines — the engine-equivalence CI job asserts exactly this. *)

val minimal_pair :
  ?budget:int ->
  ?engine:engine ->
  ?on_q:(int -> unit) ->
  ?repr:Repr.t ->
  k:int ->
  max_n:int ->
  unit ->
  scan_outcome
(** [scan] without the statistics. *)

val classes :
  ?budget:int -> ?engine:engine -> k:int -> max_n:int -> unit ->
  int list list option
(** ≡_k-classes of {a^0, …, a^max_n}, each sorted ascending, classes
    ordered by minimum. [None] when some comparison came back [Unknown].
    Under a [Parallel] engine the comparisons of each new word against
    the current representatives are fanned out through the scheduler; an
    exact [Equiv] cancels the remaining comparisons (at most one
    representative can match — ≡_k is an equivalence), which also makes
    the parallel path slightly more decisive on budget-starved runs: an
    exact match places the word even when a comparison against an
    earlier representative would have been [Unknown]. *)

val verify_pair :
  ?budget:int -> ?engine:engine -> k:int -> int -> int -> Game.verdict
(** [verify_pair ~k p q]: decide [a^p ≡_k a^q] with a full search under
    the chosen engine (default [Seed]). All engines agree on every
    instance; they differ only in speed. *)

val verify_pair_sound : ?budget:int -> ?width:int -> k:int -> int -> int -> Game.verdict
(** One-sided verification using the Duplicator-restricted search (default
    [width] 6): [Equiv] answers are sound; anything else is [Unknown]. For
    pairs beyond the full solver's reach. *)

val classes_words :
  ?budget:int -> ?engine:engine -> sigma:char list -> k:int -> max_len:int ->
  unit -> string list list option
(** ≡_k classes of all words over [sigma] up to [max_len] — the finite
    index underlying Theorem 3.2. [None] on budget exhaustion. Same
    engine/parallelism behaviour as {!classes}. *)

(** {1 Triangle indexing}

    The scan's linearization of the pair space, exposed for tests and
    for resume bookkeeping: [index_of_pair p q = q·(q−1)/2 + p] for
    0 ≤ p < q, and [pair_of_index] its inverse. Smaller index ⇔
    lexicographically earlier (q, p). *)

val index_of_pair : int -> int -> int
val pair_of_index : int -> int * int

val pair_key : int -> int -> Position.key
(** The table key under which a scan's top-level verdict for the pair
    (p, q) is stored — the unary fast-path key for p ≥ 1, the general
    game's root key for ε pairs. *)

val table_verdict : Cache.t -> k:int -> int -> int -> bool option
(** [table_verdict cache ~k p q]: the pair's ≡_k verdict as recorded in
    [cache] (rounds-aware: a win frontier ≥ k answers [Some true], a
    lose frontier ≤ k answers [Some false]), or [None] when the table
    has no exact verdict for it. Pure table read — never solves. The
    audit primitive ({!Dist.Audit}). *)
