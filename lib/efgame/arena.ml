(* Growable stack of int pairs with explicit mark/release, the packed
   engine's configuration store: game entries live in two parallel int
   arrays instead of cons cells, so extending a position during search is
   two writes and backtracking is a length decrement — no per-node heap
   allocation, nothing for the GC to trace. A generation counter ticks on
   every [reset] so tests (and assertions) can detect stale aliasing:
   any index or mark captured before a reset is invalid afterwards. *)

type t = {
  mutable a : int array;
  mutable b : int array;
  mutable len : int;
  mutable generation : int;
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  { a = Array.make capacity 0; b = Array.make capacity 0; len = 0; generation = 0 }

let len t = t.len
let generation t = t.generation
let capacity t = Array.length t.a

let reset t =
  t.len <- 0;
  t.generation <- t.generation + 1

let grow t =
  let cap = 2 * Array.length t.a in
  let a = Array.make cap 0 and b = Array.make cap 0 in
  Array.blit t.a 0 a 0 t.len;
  Array.blit t.b 0 b 0 t.len;
  t.a <- a;
  t.b <- b

let push t x y =
  if t.len = Array.length t.a then grow t;
  t.a.(t.len) <- x;
  t.b.(t.len) <- y;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Arena.pop: empty";
  t.len <- t.len - 1

let fst_at t i = t.a.(i)
let snd_at t i = t.b.(i)

let mark t = t.len

let release t m =
  if m < 0 || m > t.len then invalid_arg "Arena.release: bad mark";
  t.len <- m

let to_list ?(from = 0) t =
  List.init (t.len - from) (fun i -> (t.a.(from + i), t.b.(from + i)))

let cols t = (t.a, t.b)
let col_a t = t.a
let col_b t = t.b
