let unary n = String.make n 'a'

(* Wall-clock per-pair solve latency (full monotone chain, all rounds).
   Disabled this is one atomic load per pair; enabled it feeds the
   p50/p95/p99 the telemetry snapshots report. *)
let m_pair_ns = Obs.Metrics.timer "solve.pair_ns"

type engine = Seed | Cached of Cache.t | Parallel of Cache.t * int

type scan_outcome =
  | Found of int * int
  | Exhausted of int
  | Inconclusive of int * (int * int) list
  | Interrupted of int

type scan_stats = {
  pairs : int;
  nodes : int;
  chunks : int;
  cache_hits : int;
  cache_misses : int;
}

let engine_cache = function
  | Seed -> None
  | Cached c | Parallel (c, _) -> Some c

let engine_jobs = function Seed | Cached _ -> 1 | Parallel (_, j) -> max 1 j

let verdict_of_result = function
  | Some true -> Game.Equiv
  | Some false -> Game.Not_equiv
  | None -> Game.Unknown

(* Decide [a^p ≡_k a^q] under the given engine, also reporting the number
   of search nodes expanded. Cached/Parallel engines take the arithmetic
   fast path ({!Unary.solve}) whenever both words are nonempty, skipping
   [Game.make] entirely; pairs involving ε fall back to the general
   solver (with the transposition table when present). [store_depth]
   bounds the depth at which the shared table is touched (see
   {!Unary.solve}); it never affects verdicts. *)
let decide_pair_counted ?budget ?(engine = Seed) ?(store_depth = max_int) ?repr
    ~k p q =
  let general ?cache () =
    let verdict, st =
      Game.decide_with_stats ?budget ?cache ?repr (Game.make (unary p) (unary q)) k
    in
    (verdict, st.Game.nodes)
  in
  match engine with
  | Seed -> general ()
  | Cached cache | Parallel (cache, _) ->
      if p >= 1 && q >= 1 then
        let budget = Option.value budget ~default:50_000_000 in
        let solve =
          match (match repr with Some r -> r | None -> Repr.default ()) with
          | Repr.Packed -> Packed.solve_unary
          | Repr.Boxed -> Unary.solve
        in
        let r, nodes, _ = solve ~cache ~store_depth ~budget ~p ~q ~init:[] k in
        (verdict_of_result r, nodes)
      else general ~cache ()

let decide_pair ?budget ?engine ?store_depth ?repr ~k p q =
  fst (decide_pair_counted ?budget ?engine ?store_depth ?repr ~k p q)

(* Monotonicity prefilter: Duplicator surviving k rounds survives any
   prefix of the play, so ≡_k ⊆ ≡_j for every j < k. Testing the cheap
   low-round games first refutes most pairs long before the k-round
   search runs; every skip is justified by an exact Not_equiv verdict,
   so exhaustive-scan claims remain sound. *)
let check_chain_counted ?budget ~engine ?store_depth ?repr ~k p q =
  let nodes = ref 0 in
  let decide k' =
    let v, n = decide_pair_counted ?budget ~engine ?store_depth ?repr ~k:k' p q in
    nodes := !nodes + n;
    v
  in
  let rec go j =
    if j >= k then decide k
    else
      match decide j with
      | Game.Not_equiv -> Game.Not_equiv
      | Game.Equiv -> go (j + 1)
      | Game.Unknown -> Game.Unknown
  in
  let v = go (min 1 k) in
  (v, !nodes)

let verify_pair ?budget ?engine ~k p q = decide_pair ?budget ?engine ~k p q

let verify_pair_sound ?budget ?(width = 6) ~k p q =
  Game.equiv ~mode:(Game.Duplicator_limited width) ?budget (unary p) (unary q) k

(* The scan's work space is the (p, q) triangle linearized in (q, p)
   order: index t = q·(q−1)/2 + p for 0 ≤ p < q. Smaller index ⇔
   lexicographically earlier (q, p), so "minimal pair" = "minimal index
   among Equiv verdicts". *)
let index_of_pair p q = (q * (q - 1) / 2) + p

let pair_of_index t =
  let q =
    int_of_float ((1. +. sqrt (1. +. (8. *. float_of_int t))) /. 2.)
  in
  (* float sqrt is only a guess; settle on the exact row *)
  let q = ref q in
  while !q * (!q - 1) / 2 > t do
    decr q
  done;
  while (!q + 1) * !q / 2 <= t do
    incr q
  done;
  (t - (!q * (!q - 1) / 2), !q)

(* The cache key a scan's pair verdict lands under: the unary fast path
   ({!Unary.solve}) keys on lengths alone; ε pairs go through the general
   game, whose alphabet for a^0 vs a^q is the singleton ['a']. Exposed so
   an auditor can read a merged table's verdicts without a solver run. *)
let pair_key p q =
  if p >= 1 && q >= 1 then Position.unary_key ~p ~q []
  else Position.key ~sigma:[ 'a' ] ~left:(unary p) ~right:(unary q) []

let table_verdict cache ~k p q = Cache.lookup cache (pair_key p q) ~k

let rec atomic_cons a x =
  let c = Atomic.get a in
  if not (Atomic.compare_and_set a c (x :: c)) then atomic_cons a x

let rec atomic_max a v =
  let c = Atomic.get a in
  if v > c && not (Atomic.compare_and_set a c v) then atomic_max a v

let rec atomic_min a v =
  let c = Atomic.get a in
  if v < c && not (Atomic.compare_and_set a c v) then atomic_min a v

let cache_counters engine =
  match engine_cache engine with
  | None -> (0, 0)
  | Some c ->
      let s = Cache.stats c in
      (s.Cache.hits, s.Cache.misses)

let scan ?budget ?(engine = Seed) ?(store_depth = 0) ?range ?on_q ?on_tick
    ?stop ?repr ~k ~max_n () =
  let total = max_n * (max_n + 1) / 2 in
  let lo, hi = match range with None -> (0, total) | Some (lo, hi) -> (lo, hi) in
  if lo < 0 || hi > total || lo > hi then
    invalid_arg
      (Printf.sprintf "Witness.scan: range [%d, %d) outside triangle [0, %d)"
         lo hi total);
  let jobs = engine_jobs engine in
  let sched = Scheduler.create ~jobs ~total:(hi - lo) () in
  let found_t = Atomic.make max_int in
  let unknowns = Atomic.make [] in
  let nodes = Atomic.make 0 in
  let q_started = Atomic.make 0 in
  let hits0, misses0 = cache_counters engine in
  (* the scheduler works in window-relative indices; [lo +] maps back
     into the triangle *)
  let eval r =
    let t = lo + r in
    let p, q = pair_of_index t in
    (match on_q with
    | Some f ->
        if q > Atomic.get q_started then begin
          atomic_max q_started q;
          f q
        end
    | None -> ());
    let v, n =
      Obs.Trace.with_span "pair"
        ~args:(fun () -> [ ("p", Obs.Trace.I p); ("q", Obs.Trace.I q) ])
        (fun () ->
          Obs.Metrics.time m_pair_ns (fun () ->
              check_chain_counted ?budget ~engine ~store_depth ?repr ~k p q))
    in
    ignore (Atomic.fetch_and_add nodes n);
    match v with
    | Game.Equiv ->
        atomic_min found_t t;
        (* indices above t can no longer be the minimal witness: cancel
           their chunks; everything below still completes, keeping the
           minimality claim sound *)
        Scheduler.shrink_limit sched r
    | Game.Not_equiv -> ()
    | Game.Unknown -> atomic_cons unknowns (p, q)
  in
  let tick =
    match on_tick with
    | None -> None
    | Some f -> Some (fun () -> f ~completed:(Scheduler.completed sched))
  in
  Scheduler.run ?tick ?stop sched eval;
  let hits1, misses1 = cache_counters engine in
  let stats =
    {
      pairs = Scheduler.completed sched;
      nodes = Atomic.get nodes;
      chunks = Scheduler.chunks sched;
      cache_hits = hits1 - hits0;
      cache_misses = misses1 - misses0;
    }
  in
  let outcome =
    (* a stopped scan makes no claim at all: completed pairs are in the
       table (if any), but neither minimality nor exhaustiveness holds *)
    if Scheduler.stopped sched then Interrupted stats.pairs
    else
      match Atomic.get found_t with
      | t when t < max_int ->
          let p, q = pair_of_index t in
          Found (p, q)
      | _ -> (
          match Atomic.get unknowns with
          | [] -> Exhausted max_n
          | us ->
              Inconclusive
                ( max_n,
                  List.sort (fun (p, q) (p', q') -> compare (q, p) (q', p')) us
                ))
  in
  (outcome, stats)

let minimal_pair ?budget ?engine ?on_q ?repr ~k ~max_n () =
  fst (scan ?budget ?engine ?on_q ?repr ~k ~max_n ())

(* ------------------------------------------------------------------ *)
(* Class decomposition: place each item against the current
   representative list. Representatives live in a growable array (the
   seed kept a list and appended with [@], quadratic in the class
   count); members are collected per-representative and reversed once at
   the end. *)

type 'a reps = { mutable arr : ('a * 'a list ref) array; mutable len : int }

let reps_make () = { arr = [||]; len = 0 }

let reps_push r x =
  let cell = (x, ref [ x ]) in
  if r.len = Array.length r.arr then begin
    let grown = Array.make (max 4 (2 * r.len)) cell in
    Array.blit r.arr 0 grown 0 r.len;
    r.arr <- grown
  end;
  r.arr.(r.len) <- cell;
  r.len <- r.len + 1

let reps_to_classes r =
  List.init r.len (fun i -> List.rev !(snd r.arr.(i)))

(* Place [x]: sequentially when [jobs = 1] (first Equiv in insertion
   order; an Unknown encountered before it aborts, exactly the seed
   semantics), else by fanning the comparisons against all current
   representatives through the scheduler. ≡_k is an equivalence, so at
   most one representative can answer Equiv — whichever comparison finds
   it cancels the rest. The parallel path is accordingly slightly more
   decisive than the sequential one: an exact Equiv places the item even
   if a comparison against an earlier representative ran out of budget. *)
let place ~jobs ~decide reps x =
  if reps.len = 0 then `New
  else if jobs = 1 then begin
    let rec go i =
      if i >= reps.len then `New
      else
        match decide (fst reps.arr.(i)) x with
        | Game.Equiv -> `Member i
        | Game.Not_equiv -> go (i + 1)
        | Game.Unknown -> `Unknown
    in
    go 0
  end
  else begin
    let sched = Scheduler.create ~jobs:(min jobs reps.len) ~total:reps.len () in
    let found = Atomic.make max_int in
    let unknown = Atomic.make false in
    Scheduler.run sched (fun i ->
        match decide (fst reps.arr.(i)) x with
        | Game.Equiv ->
            atomic_min found i;
            Scheduler.shrink_limit sched i
        | Game.Not_equiv -> ()
        | Game.Unknown -> Atomic.set unknown true);
    match Atomic.get found with
    | i when i < max_int -> `Member i
    | _ -> if Atomic.get unknown then `Unknown else `New
  end

let partition ~jobs ~decide items =
  let reps = reps_make () in
  let ok = ref true in
  List.iter
    (fun x ->
      if !ok then
        match place ~jobs ~decide reps x with
        | `Member i ->
            let _, members = reps.arr.(i) in
            members := x :: !members
        | `New -> reps_push reps x
        | `Unknown -> ok := false)
    items;
  if !ok then Some (reps_to_classes reps) else None

let classes ?budget ?engine ~k ~max_n () =
  let engine = Option.value engine ~default:Seed in
  partition ~jobs:(engine_jobs engine)
    ~decide:(fun rep n -> decide_pair ?budget ~engine ~k rep n)
    (List.init (max_n + 1) Fun.id)

let classes_words ?budget ?engine ~sigma ~k ~max_len () =
  let engine = Option.value engine ~default:Seed in
  let cache = engine_cache engine in
  partition ~jobs:(engine_jobs engine)
    ~decide:(fun rep w -> Game.equiv ?budget ?cache ~sigma rep w k)
    (Words.Word.enumerate ~alphabet:sigma ~max_len)
