let unary n = String.make n 'a'

type engine = Seed | Cached of Cache.t | Parallel of Cache.t * int

type scan_outcome =
  | Found of int * int
  | Exhausted of int
  | Inconclusive of int * (int * int) list

let verdict_of_result = function
  | Some true -> Game.Equiv
  | Some false -> Game.Not_equiv
  | None -> Game.Unknown

(* Decide [a^p ≡_k a^q] under the given engine. Cached/Parallel engines
   take the arithmetic fast path ({!Unary.solve}) whenever both words are
   nonempty, skipping [Game.make] entirely; pairs involving ε fall back
   to the general solver (with the transposition table when present). *)
let decide_pair ?budget ?(engine = Seed) ~k p q =
  let general ?cache () = Game.equiv ?budget ?cache (unary p) (unary q) k in
  match engine with
  | Seed -> general ()
  | Cached cache | Parallel (cache, _) ->
      if p >= 1 && q >= 1 then
        let budget = Option.value budget ~default:50_000_000 in
        let r, _, _ = Unary.solve ~cache ~budget ~p ~q ~init:[] k in
        verdict_of_result r
      else general ~cache ()

(* Monotonicity prefilter: Duplicator surviving k rounds survives any
   prefix of the play, so ≡_k ⊆ ≡_j for every j < k. Testing the cheap
   low-round games first refutes most pairs long before the k-round
   search runs; every skip is justified by an exact Not_equiv verdict,
   so exhaustive-scan claims remain sound. *)
let check_chain ?budget ~engine ~k p q =
  let rec go j =
    if j >= k then decide_pair ?budget ~engine ~k p q
    else
      match decide_pair ?budget ~engine ~k:j p q with
      | Game.Not_equiv -> Game.Not_equiv
      | Game.Equiv -> go (j + 1)
      | Game.Unknown -> Game.Unknown
  in
  go (min 1 k)

let verify_pair ?budget ?engine ~k p q = decide_pair ?budget ?engine ~k p q

let verify_pair_sound ?budget ?(width = 6) ~k p q =
  Game.equiv ~mode:(Game.Duplicator_limited width) ?budget (unary p) (unary q) k

let minimal_pair ?budget ?(engine = Seed) ?on_q ~k ~max_n () =
  let unknowns = ref [] in
  let found = ref None in
  let eval q p = (p, check_chain ?budget ~engine ~k p q) in
  (try
     for q = 1 to max_n do
       (match on_q with Some f -> f q | None -> ());
       let ps = List.init q Fun.id in
       let results =
         match engine with
         | Parallel (_, jobs) when jobs > 1 -> Parallel.map ~jobs (eval q) ps
         | _ -> List.map (eval q) ps
       in
       List.iter
         (fun (p, r) ->
           match r with
           | Game.Equiv ->
               if !found = None then begin
                 found := Some (p, q);
                 raise Exit
               end
           | Game.Not_equiv -> ()
           | Game.Unknown -> unknowns := (p, q) :: !unknowns)
         results
     done
   with Exit -> ());
  match !found with
  | Some (p, q) -> Found (p, q)
  | None ->
      if !unknowns = [] then Exhausted max_n
      else Inconclusive (max_n, List.rev !unknowns)

let classes ?budget ?engine ~k ~max_n () =
  let reps : (int * int list ref) list ref = ref [] in
  let ok = ref true in
  for n = 0 to max_n do
    if !ok then begin
      let rec place = function
        | [] -> reps := !reps @ [ (n, ref [ n ]) ]
        | (rep, members) :: rest -> (
            match decide_pair ?budget ?engine ~k rep n with
            | Game.Equiv -> members := n :: !members
            | Game.Not_equiv -> place rest
            | Game.Unknown -> ok := false)
      in
      place !reps
    end
  done;
  if not !ok then None
  else Some (List.map (fun (_, members) -> List.rev !members) !reps)

let classes_words ?budget ?engine ~sigma ~k ~max_len () =
  let cache =
    match engine with
    | None | Some Seed -> None
    | Some (Cached c) | Some (Parallel (c, _)) -> Some c
  in
  let reps : (string * string list ref) list ref = ref [] in
  let ok = ref true in
  List.iter
    (fun w ->
      if !ok then begin
        let rec place = function
          | [] -> reps := !reps @ [ (w, ref [ w ]) ]
          | (rep, members) :: rest -> (
              match Game.equiv ?budget ?cache ~sigma rep w k with
              | Game.Equiv -> members := w :: !members
              | Game.Not_equiv -> place rest
              | Game.Unknown -> ok := false)
        in
        place !reps
      end)
    (Words.Word.enumerate ~alphabet:sigma ~max_len);
  if not !ok then None
  else Some (List.map (fun (_, members) -> List.rev !members) !reps)
