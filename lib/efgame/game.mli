(** The k-round Ehrenfeucht-Fraïssé game for FC (Section 3), with an
    exhaustive solver deciding ≡_k.

    The solver performs the full ∀(Spoiler move) ∃(Duplicator response)
    search with (a) incremental partial-isomorphism pruning, (b)
    memoization on canonicalized positions, (c) skipping of dominated
    Spoiler moves (repeating an already-played element or a constant value
    forces Duplicator's answer and changes nothing), and (d) {e derived}
    Duplicator candidates — responses forced by the concatenation pattern
    of the position — tried before heuristically-ordered ones, so that
    genuinely equivalent words are verified close to the Spoiler-branching
    lower bound.

    Verdicts are three-valued: a node budget yields [Unknown] instead of a
    wrong answer, and the Duplicator-restricted mode (which only ever makes
    Duplicator weaker) upgrades positive answers to sound [Equiv] verdicts
    on instances the full search cannot finish. *)

type side = Left | Right

type move = { side : side; element : string }

type verdict = Equiv | Not_equiv | Unknown

type mode =
  | Full  (** complete search: both verdicts exact *)
  | Duplicator_limited of int
      (** Duplicator tries only the derived candidates plus the [n]
          best-scored responses; [Equiv] answers remain sound, failures
          are reported as [Unknown]. *)

type config

val make : ?sigma:char list -> string -> string -> config
(** [make w v]: a game over 𝔄_w (Left) and 𝔅_v (Right). Σ defaults to the
    union of the two words' letters. *)

val left_word : config -> string
val right_word : config -> string

val base_partial_iso : config -> bool
(** Whether the constant vectors alone form a partial isomorphism (if not,
    the words are already distinguished at 0 rounds — e.g. when a letter
    occurs in only one of them). *)

type stats = {
  nodes : int;
  memo_entries : int;
  cache_hits : int;  (** transposition-table hits (0 without [?cache]) *)
  cache_misses : int;
}

val decide :
  ?mode:mode -> ?budget:int -> ?cache:Cache.t -> ?repr:Repr.t -> config -> int
  -> verdict
(** [decide cfg k]: does Duplicator have a winning strategy for the
    k-round game? [budget] bounds the number of search nodes (default
    50_000_000).

    With [?cache], the solve runs through the transposition-table engine:
    positions are canonicalized ({!Position}), consulted in and stored to
    the shared {!Cache}, Spoiler moves with partial-isomorphism-forced
    replies skip the candidate scan, and unary instances are dispatched
    to the arithmetic fast path ({!Unary}). Verdicts are identical to the
    plain engine on every instance; without [?cache] the seed search runs
    unchanged.

    [?repr] selects the solver engine (default {!Repr.default}): [Packed]
    replays the same search over succinct representations ({!Packed}) on
    the eligible paths — cache-less full-mode solves from the empty
    position and cached unary solves — and falls back to the boxed
    engine elsewhere. Verdicts (and node counts) are identical under
    both engines on every instance. *)

type solver
(** A solver handle with a persistent memo table, for deciding many
    positions of the same game (e.g. by solver-backed strategies). *)

val solver :
  ?mode:mode -> ?budget:int -> ?cache:Cache.t -> ?repr:Repr.t -> config -> solver

val solver_wins : solver -> (string * string) list -> int -> verdict
(** [solver_wins s pairs k]: can Duplicator win [k] more rounds from the
    position given by the played [(left, right)] pairs? [Not_equiv] is also
    returned when the position itself is not a partial isomorphism. *)

val solver_stats : solver -> stats
(** Cumulative nodes and memo size of the handle; cache hit/miss counters
    are those of the shared table, when one was supplied. *)

val decide_with_stats :
  ?mode:mode -> ?budget:int -> ?cache:Cache.t -> ?repr:Repr.t -> config -> int
  -> verdict * stats

val equiv :
  ?sigma:char list -> ?mode:mode -> ?budget:int -> ?cache:Cache.t ->
  ?repr:Repr.t -> string -> string -> int -> verdict
(** Convenience wrapper building the config. *)

val winning_line : ?budget:int -> config -> int -> (move * string option) list option
(** When Spoiler wins the k-round game, a principal variation: Spoiler's
    winning move each round together with the Duplicator response explored
    (or [None] when no response preserves the partial isomorphism).
    Returns [None] when Duplicator wins or the budget runs out. *)

val pp_move : Format.formatter -> move -> unit
val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Shared with strategies} *)

val response_candidates :
  config -> Partial_iso.entry list -> side -> string -> string list
(** The ordered Duplicator candidate list used by the solver: derived
    candidates first, then all other factors of the opposite structure by
    heuristic score. Exposed for solver-backed strategies and for the
    ordering-ablation bench. *)

val structures : config -> Fc.Structure.t * Fc.Structure.t
val constant_entries : config -> Partial_iso.entry list

val spoiler_moves : config -> side -> string list
(** The candidate Spoiler elements on one side (the universe minus the
    constant values), longest first — the exact top-level move list of the
    solver. Exposed for the parallel fan-out driver. *)

val unary_of : config -> (char * int * int) option
(** [Some (c, p, q)] when both words are nonempty powers of the same
    letter [c] — the instances eligible for the {!Unary} fast path. *)
