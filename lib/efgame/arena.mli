(** Arena-allocated game configurations for the packed engine.

    A stack of int pairs in two parallel arrays: a game position's
    entries (partial-isomorphism coordinates) are pushed as the search
    descends and popped as it backtracks, replacing the boxed engine's
    cons-cell position lists. One arena per domain is reused across
    solves ({!Packed} holds it in domain-local state); {!reset} at solve
    start plus the stack discipline guarantee no configuration from an
    earlier solve can alias into a later one — {!generation} exists so
    tests can assert exactly that. *)

type t

val create : ?capacity:int -> unit -> t
val reset : t -> unit
(** Empty the arena and advance {!generation}. Marks and indices taken
    before a reset are invalid after it. *)

val push : t -> int -> int -> unit
val pop : t -> unit
val len : t -> int
val capacity : t -> int

val fst_at : t -> int -> int
val snd_at : t -> int -> int
(** Unchecked reads of entry [i] (caller keeps [i < len]). *)

val mark : t -> int
val release : t -> int -> unit
(** [release t (mark t)] restores the stack to the marked depth; raises
    [Invalid_argument] when the mark exceeds the current length (i.e. it
    was taken before a {!reset}). *)

val generation : t -> int
(** Incremented by every {!reset}; pair with {!mark} to detect stale
    reuse across solves. *)

val to_list : ?from:int -> t -> (int * int) list
(** Entries from index [from] upward, bottom to top (diagnostics and
    boxed-interop, e.g. materializing a shared-cache key). *)

val cols : t -> int array * int array
val col_a : t -> int array
val col_b : t -> int array
(** The two live columns, for tight read loops: entries occupy indices
    [0 .. len - 1]; anything beyond is garbage. The arrays are replaced
    when a {!push} grows the arena and stale after {!reset}, so fetch
    them fresh per call and never hold them across a push. *)
