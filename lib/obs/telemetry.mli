(** Live telemetry: a background tick thread publishing rolling
    snapshots while the process works.

    Discipline (see DESIGN.md): the tick thread owns {e all} the I/O —
    the solve hot path only touches the sharded atomics it already
    touches for metrics, so a slow disk delays telemetry, never the
    scan. Every write is atomic (tmp + rename, the [Persist]
    discipline), so a concurrent reader always sees a complete
    snapshot. *)

(** {1 Generic ticker} — the mechanism, reusable for custom publishers
    (the [dist] worker heartbeats ride on it). *)

type ticker

(** [ticker ~interval f] spawns a thread calling [f ~seq] now and then
    every [interval] seconds (default 2.0). Exceptions from [f] are
    swallowed: a failed publish must never kill the publisher. *)
val ticker : ?interval:float -> (seq:int -> unit) -> ticker

(** Stop the thread, join it, then run one final [f] from the calling
    thread — after [stop] returns, the last snapshot reflects the end
    state (so aggregated totals can match the process's final report
    exactly). *)
val stop : ticker -> unit

(** Force an immediate out-of-band tick from the calling thread. *)
val tick_now : ticker -> unit

(** {1 Standard snapshot publisher} *)

(** Atomic (tmp+rename) JSON file write; shared by every telemetry
    publisher. I/O failures are swallowed. *)
val write_atomic : path:string -> (Jsonw.t -> unit) -> unit

type t

(** [start ~path ()] begins publishing [efgame-telemetry/1] snapshots
    to [path]: pid, seq, uptime, {!Env} identity, the [progress]
    counters (re-read every tick), and the full merged {!Metrics}
    snapshot. When [flight] is given, the {!Events} ring is dumped
    there on every tick too — this is how a SIGKILLed process still
    leaves a recent post-mortem. *)
val start :
  ?interval:float ->
  ?flight:string ->
  ?progress:(unit -> (string * int) list) ->
  path:string ->
  unit ->
  t

(** Publish one snapshot immediately (out of band). *)
val publish : t -> unit

(** Stop the tick thread and write the final snapshot. *)
val stop_publisher : t -> unit
