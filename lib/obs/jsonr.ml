(* A small recursive-descent JSON reader — the read-side dual of
   {!Jsonw}. It exists for the telemetry consumers ([shard top], [trace
   merge], tests) that must ingest snapshot files written by possibly
   crashed or still-running processes: parsing is strict (a truncated
   heartbeat is an [Error], never a half-value), but every accessor is
   option-returning so callers can skip damaged or shape-shifted
   documents the way [Merge] skips corrupt shards. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let skip_ws c =
  while
    c.i < String.length c.s
    && match c.s.[c.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.i <- c.i + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.i <- c.i + 1
  | Some x -> fail "expected %c at byte %d, got %c" ch c.i x
  | None -> fail "expected %c at byte %d, got end of input" ch c.i

let literal c word v =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    v
  end
  else fail "bad literal at byte %d" c.i

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail "bad hex escape digit %c" ch

(* \uXXXX escapes are decoded to UTF-8; surrogate pairs are combined
   when both halves are present, lone surrogates become U+FFFD. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_u16 c =
  if c.i + 4 > String.length c.s then fail "truncated \\u escape";
  let v =
    (hex_digit c.s.[c.i] lsl 12)
    lor (hex_digit c.s.[c.i + 1] lsl 8)
    lor (hex_digit c.s.[c.i + 2] lsl 4)
    lor hex_digit c.s.[c.i + 3]
  in
  c.i <- c.i + 4;
  v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.i >= String.length c.s then fail "unterminated string";
    match c.s.[c.i] with
    | '"' -> c.i <- c.i + 1
    | '\\' ->
        c.i <- c.i + 1;
        (if c.i >= String.length c.s then fail "unterminated escape"
         else
           match c.s.[c.i] with
           | '"' -> Buffer.add_char b '"'; c.i <- c.i + 1
           | '\\' -> Buffer.add_char b '\\'; c.i <- c.i + 1
           | '/' -> Buffer.add_char b '/'; c.i <- c.i + 1
           | 'b' -> Buffer.add_char b '\b'; c.i <- c.i + 1
           | 'f' -> Buffer.add_char b '\012'; c.i <- c.i + 1
           | 'n' -> Buffer.add_char b '\n'; c.i <- c.i + 1
           | 'r' -> Buffer.add_char b '\r'; c.i <- c.i + 1
           | 't' -> Buffer.add_char b '\t'; c.i <- c.i + 1
           | 'u' ->
               c.i <- c.i + 1;
               let u = parse_u16 c in
               if u >= 0xD800 && u <= 0xDBFF then
                 if
                   c.i + 2 <= String.length c.s
                   && c.s.[c.i] = '\\'
                   && c.s.[c.i + 1] = 'u'
                 then begin
                   c.i <- c.i + 2;
                   let lo = parse_u16 c in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     add_utf8 b
                       (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                   else begin
                     add_utf8 b 0xFFFD;
                     add_utf8 b lo
                   end
                 end
                 else add_utf8 b 0xFFFD
               else if u >= 0xDC00 && u <= 0xDFFF then add_utf8 b 0xFFFD
               else add_utf8 b u
           | ch -> fail "bad escape \\%c" ch);
        go ()
    | ch ->
        Buffer.add_char b ch;
        c.i <- c.i + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.i in
  let num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.i < String.length c.s && num_char c.s.[c.i] do
    c.i <- c.i + 1
  done;
  let lit = String.sub c.s start (c.i - start) in
  match float_of_string_opt lit with
  | Some f -> Num f
  | None -> fail "bad number %S at byte %d" lit start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.i <- c.i + 1;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (key, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              members ()
          | Some '}' -> c.i <- c.i + 1
          | _ -> fail "expected , or } at byte %d" c.i
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      c.i <- c.i + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.i <- c.i + 1;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.i <- c.i + 1;
              elements ()
          | Some ']' -> c.i <- c.i + 1
          | _ -> fail "expected , or ] at byte %d" c.i
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; i = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.i <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" c.i)
      else Ok v
  | exception Bad msg -> Error msg

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  with
  | exception Sys_error msg -> Error msg
  | data -> (
      match parse data with
      | Ok _ as ok -> ok
      | Error msg -> Error (path ^ ": " ^ msg))

(* ------------------------------------------------------- accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2. ** 62. ->
      Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None

let mem_string key j = Option.bind (member key j) to_string
let mem_float key j = Option.bind (member key j) to_float
let mem_int key j = Option.bind (member key j) to_int
let mem_list key j = Option.bind (member key j) to_list

(* ------------------------------------------------------ re-emission *)

let rec write w = function
  | Null -> Jsonw.null w
  | Bool b -> Jsonw.bool w b
  | Num f ->
      if Float.is_integer f && Float.abs f <= 2. ** 62. then
        Jsonw.int w (int_of_float f)
      else Jsonw.float w f
  | Str s -> Jsonw.string w s
  | Arr items -> Jsonw.arr w (fun w -> List.iter (write w) items)
  | Obj fields ->
      Jsonw.obj w (fun w ->
          List.iter (fun (k, v) -> Jsonw.field w k (fun w -> write w v)) fields)
