(** Where a measurement was taken.

    Benchmark reports used to be environment-blind: [bench --json]
    overwrote BENCH_efgame.json with numbers from whatever machine it
    ran on, and the CI comparison then judged runner timings against
    workstation timings as if they were commensurable. Every report now
    carries this block, and comparisons downgrade to warnings when the
    environments differ (see the ablation-matrix CI job). *)

type t = {
  hostname : string;
  cpu : string;  (** "model name" from /proc/cpuinfo; "unknown" elsewhere *)
  domains : int;  (** [Domain.recommended_domain_count ()] *)
  ocaml_version : string;
  word_size : int;
  os : string;
}

val capture : unit -> t

val emit : t -> Jsonw.t -> unit
(** Write the block as a JSON object value (use under [Jsonw.field]). *)
