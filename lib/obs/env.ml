let cpu_model () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> "unknown"
  | ic ->
      let rec go () =
        match input_line ic with
        | exception End_of_file -> None
        | line when String.starts_with ~prefix:"model name" line -> (
            match String.index_opt line ':' with
            | Some i ->
                Some
                  (String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)))
            | None -> go ())
        | _ -> go ()
      in
      let m = go () in
      close_in ic;
      Option.value m ~default:"unknown"

type t = {
  hostname : string;
  cpu : string;
  domains : int;
  ocaml_version : string;
  word_size : int;
  os : string;
}

let capture () =
  {
    hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    cpu = cpu_model ();
    domains = Domain.recommended_domain_count ();
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    os = Sys.os_type;
  }

let emit t j =
  Jsonw.obj j (fun j ->
      Jsonw.field_string j "hostname" t.hostname;
      Jsonw.field_string j "cpu" t.cpu;
      Jsonw.field_int j "recommended_domains" t.domains;
      Jsonw.field_string j "ocaml_version" t.ocaml_version;
      Jsonw.field_int j "word_size" t.word_size;
      Jsonw.field_string j "os" t.os)
