(** Low-overhead span tracing, emitted as Chrome trace-event JSON.

    The output file ([efgame-trace/1]) is a standard JSON Object Format
    trace: open it at {{:https://ui.perfetto.dev}ui.perfetto.dev} (or
    [chrome://tracing]). Spans carry [pid] = the real process id and
    [tid] = the OCaml domain id of the domain that ran them, so a
    multicore frontier scan renders as one track per domain, with
    scheduler chunks and pair decisions nested on each track — and
    [efgame_cli trace merge] can stitch several processes' traces into
    one fleet timeline with one track per (worker, domain).

    Overhead discipline: when tracing is inactive, {!with_span} is a
    single atomic load and branch followed by the traced function call —
    no timestamps, no allocation beyond the closure the caller already
    built. When active, spans are serialized as complete ("ph":"X")
    events into per-domain buffers (each guarded by its own mutex, so
    domains never contend with each other), and {!finish} stitches the
    buffers into the file.

    {!start}/{!finish} are not re-entrant and are meant to be called
    once from the main domain (the CLIs call them around [main]). *)

type arg = I of int | S of string | F of float

(** [start ~path ()] activates tracing. Events are stamped with the
    {e real} pid (captured here), and [label] (default ["efgame"])
    names the process track — fleet workers pass their owner id so
    [trace merge] timelines show one named process per worker. *)
val start : ?label:string -> path:string -> unit -> unit

val active : unit -> bool

(** Write the trace file and deactivate. No-op when inactive. *)
val finish : unit -> unit

(** [with_span name f] runs [f], recording a span covering its
    execution (including exceptional exits, via [Fun.protect]). [args]
    is evaluated only when tracing is active. *)
val with_span : ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a

(** A zero-duration instant event on the calling domain's track. *)
val instant : ?args:(unit -> (string * arg) list) -> string -> unit

(** Span accounting, for tests: every span opened must eventually be
    closed (emitted). Counters reset on {!start}. *)
val spans_opened : unit -> int

val spans_closed : unit -> int
