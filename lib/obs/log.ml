type level = Error | Warn | Info | Debug

let to_int = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

(* the threshold is read on every call, possibly from several domains *)
let threshold = Atomic.make (to_int Info)

let set_level l = Atomic.set threshold (to_int l)

let level () =
  match Atomic.get threshold with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let enabled l = to_int l <= Atomic.get threshold

let setup ?(quiet = false) ?(verbosity = 0) () =
  set_level (if quiet then Error else if verbosity >= 1 then Debug else Info)

let mu = Mutex.create ()

let severity = function
  | Error -> "error: "
  | Warn -> "warning: "
  | Info | Debug -> ""

(* Process start, for the elapsed-ms column: module initialization
   happens before any line is emitted. *)
let t0 = Unix.gettimeofday ()

let iso8601 t =
  let tm = Unix.gmtime t in
  let ms = int_of_float ((t -. Float.of_int (int_of_float t)) *. 1000.) in
  let ms = if ms < 0 then 0 else if ms > 999 then 999 else ms in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms

let elapsed_ms () = int_of_float ((Unix.gettimeofday () -. t0) *. 1000.)

(* "<iso-utc> +<elapsed>ms [tag] severity: msg" — the timestamp gives
   cross-host correlation (fleet logs interleave meaningfully), the
   elapsed column gives at-a-glance phase timing within one process,
   and the [tag] stays where long-standing greps (and the shard-torture
   harness) expect it. *)
let log lvl ?(tag = "") fmt =
  if enabled lvl then
    Format.kasprintf
      (fun msg ->
        let line =
          Printf.sprintf "%s +%dms %s%s%s"
            (iso8601 (Unix.gettimeofday ()))
            (elapsed_ms ())
            (if tag = "" then "" else "[" ^ tag ^ "] ")
            (severity lvl) msg
        in
        Mutex.protect mu (fun () ->
            prerr_string line;
            prerr_newline ()))
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let err ?tag fmt = log Error ?tag fmt
let warn ?tag fmt = log Warn ?tag fmt
let info ?tag fmt = log Info ?tag fmt
let debug ?tag fmt = log Debug ?tag fmt
