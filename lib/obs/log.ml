type level = Error | Warn | Info | Debug

let to_int = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

(* the threshold is read on every call, possibly from several domains *)
let threshold = Atomic.make (to_int Info)

let set_level l = Atomic.set threshold (to_int l)

let level () =
  match Atomic.get threshold with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let enabled l = to_int l <= Atomic.get threshold

let setup ?(quiet = false) ?(verbosity = 0) () =
  set_level (if quiet then Error else if verbosity >= 1 then Debug else Info)

let mu = Mutex.create ()

let severity = function
  | Error -> "error: "
  | Warn -> "warning: "
  | Info | Debug -> ""

let log lvl ?(tag = "") fmt =
  if enabled lvl then
    Format.kasprintf
      (fun msg ->
        let line =
          (if tag = "" then "" else "[" ^ tag ^ "] ") ^ severity lvl ^ msg
        in
        Mutex.protect mu (fun () ->
            prerr_string line;
            prerr_newline ()))
      fmt
  else Format.ikfprintf (fun _ -> ()) Format.err_formatter fmt

let err ?tag fmt = log Error ?tag fmt
let warn ?tag fmt = log Warn ?tag fmt
let info ?tag fmt = log Info ?tag fmt
let debug ?tag fmt = log Debug ?tag fmt
