(** Wall clock, wrapped so instrumented libraries ({!Obs.Trace} spans,
    {!Obs.Metrics} duration histograms) need no direct [unix]
    dependency of their own. *)

val now_s : unit -> float

(** Microseconds since the epoch — the unit Chrome trace events use. *)
val now_us : unit -> float
