(** Wall clock, wrapped so instrumented libraries ({!Obs.Trace} spans,
    {!Obs.Metrics} duration histograms) need no direct [unix]
    dependency of their own. *)

val now_s : unit -> float

(** Microseconds since the epoch — the unit Chrome trace events use. *)
val now_us : unit -> float

(** Nanoseconds since the epoch as an int — the unit {!Obs.Metrics}
    timers bucket by. Granularity is whatever [gettimeofday] offers
    (~1µs); the value fits a tagged 63-bit int for another century. *)
val now_ns : unit -> int
