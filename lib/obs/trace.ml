type arg = I of int | S of string | F of float

let slots_n = 64

type slot = { mu : Mutex.t; buf : Buffer.t }

let slots =
  Array.init slots_n (fun _ -> { mu = Mutex.create (); buf = Buffer.create 256 })

let on = Atomic.make false
let active () = Atomic.get on

(* written by [start] before [on] flips, read by [finish] after *)
let path_r = ref None

(* Cross-process identity: events carry the real pid (captured at
   [start], so a fork+trace child stamps its own), and the process
   track is named by [label] — a fleet worker labels itself with its
   owner id, so a merged timeline shows one named process per worker
   with one track per domain under it. *)
let pid_r = ref 1
let label_r = ref "efgame"
let opened = Atomic.make 0
let closed = Atomic.make 0

(* domain ids that emitted at least one event, for thread_name metadata;
   a race may record duplicates, deduped at [finish] *)
let tids = Atomic.make []

let rec record_tid tid =
  let cur = Atomic.get tids in
  if not (List.mem tid cur) then
    if not (Atomic.compare_and_set tids cur (tid :: cur)) then record_tid tid

let start ?(label = "efgame") ~path () =
  path_r := Some path;
  pid_r := Unix.getpid ();
  label_r := label;
  Array.iter (fun s -> Mutex.protect s.mu (fun () -> Buffer.clear s.buf)) slots;
  Atomic.set opened 0;
  Atomic.set closed 0;
  Atomic.set tids [];
  Atomic.set on true

let spans_opened () = Atomic.get opened
let spans_closed () = Atomic.get closed

let write_args w args =
  Jsonw.field w "args" (fun w ->
      Jsonw.obj w (fun w ->
          List.iter
            (fun (k, v) ->
              match v with
              | I n -> Jsonw.field_int w k n
              | S s -> Jsonw.field_string w k s
              | F f -> Jsonw.field_float w k f)
            args))

(* Serialize one event and append it (comma-prefixed) to the calling
   domain's slot. Every slot fragment is a sequence of ",{...}" chunks;
   [finish] opens the traceEvents array with a metadata event, so the
   leading commas always follow an existing element. *)
let emit ~name ~ph ~ts ~dur ~args =
  let tid = (Domain.self () :> int) in
  record_tid tid;
  let w = Jsonw.create ~initial_size:128 () in
  Jsonw.obj w (fun w ->
      Jsonw.field_string w "name" name;
      Jsonw.field_string w "ph" ph;
      Jsonw.field_int w "pid" !pid_r;
      Jsonw.field_int w "tid" tid;
      Jsonw.field w "ts" (fun w -> Jsonw.float ~prec:3 w ts);
      (match dur with
      | Some d -> Jsonw.field w "dur" (fun w -> Jsonw.float ~prec:3 w d)
      | None -> ());
      (match ph with
      | "i" -> Jsonw.field_string w "s" "t" (* thread-scoped instant *)
      | _ -> ());
      match args with None -> () | Some mk -> write_args w (mk ()));
  let s = slots.(tid land (slots_n - 1)) in
  Mutex.protect s.mu (fun () ->
      Buffer.add_string s.buf ",\n";
      Buffer.add_string s.buf (Jsonw.contents w))

let with_span ?args name f =
  if not (Atomic.get on) then f ()
  else begin
    Atomic.incr opened;
    let t0 = Clock.now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_us () in
        emit ~name ~ph:"X" ~ts:t0 ~dur:(Some (t1 -. t0)) ~args;
        Atomic.incr closed)
      f
  end

let instant ?args name =
  if Atomic.get on then
    emit ~name ~ph:"i" ~ts:(Clock.now_us ()) ~dur:None ~args

let metadata w ~name ~tid ~value =
  Jsonw.obj w (fun w ->
      Jsonw.field_string w "name" name;
      Jsonw.field_string w "ph" "M";
      Jsonw.field_int w "pid" !pid_r;
      Jsonw.field_int w "tid" tid;
      Jsonw.field w "args" (fun w ->
          Jsonw.obj w (fun w -> Jsonw.field_string w "name" value)))

let finish () =
  if Atomic.get on then begin
    Atomic.set on false;
    match !path_r with
    | None -> ()
    | Some path ->
        path_r := None;
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            let header = Jsonw.create () in
            (* the schema/displayTimeUnit fields and the first metadata
               event; slot fragments are comma-prefixed continuations of
               the traceEvents array *)
            output_string oc
              "{\"schema\":\"efgame-trace/1\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
            metadata header ~name:"process_name" ~tid:0 ~value:!label_r;
            let seen = List.sort_uniq compare (Atomic.get tids) in
            List.iter
              (fun tid ->
                metadata header ~name:"thread_name" ~tid
                  ~value:(Printf.sprintf "domain %d" tid))
              seen;
            output_string oc (Jsonw.contents header);
            Array.iter
              (fun s ->
                Mutex.protect s.mu (fun () ->
                    Buffer.output_buffer oc s.buf;
                    Buffer.clear s.buf))
              slots;
            output_string oc "]}\n")
  end
