(** Minimal JSON reader — the read-side dual of {!Jsonw}.

    Built for the fleet-telemetry consumers ([shard top], [trace
    merge]) that read snapshot files written by concurrently running or
    crashed processes. Parsing is strict: a truncated or torn file is
    an [Error], never a silently partial value (the atomic tmp+rename
    publish discipline means a well-formed file is all-or-nothing, so
    strictness loses nothing). The accessors are all option-returning,
    so a caller can treat an unexpected shape exactly like a corrupt
    file: skip it with a warning and keep aggregating. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

(** Read and parse a whole file; I/O errors come back as [Error] with
    the path prefixed, like the parse errors. *)
val of_file : string -> (t, string) result

(** {1 Accessors} — all total; [None] on shape mismatch. *)

val member : string -> t -> t option
val to_string : t -> string option
val to_float : t -> float option

(** Integral numbers only (and only those exactly representable in a
    63-bit int); [1.5] is [None], not [1]. *)
val to_int : t -> int option

val to_bool : t -> bool option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option

val mem_string : string -> t -> string option
val mem_float : string -> t -> float option
val mem_int : string -> t -> int option
val mem_list : string -> t -> t list option

(** Re-serialize a parsed value through {!Jsonw} (used by [trace merge]
    to splice events from several files into one document). *)
val write : Jsonw.t -> t -> unit
