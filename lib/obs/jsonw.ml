type t = { buf : Buffer.t; mutable comma : bool }

let create ?(initial_size = 256) () =
  { buf = Buffer.create initial_size; comma = false }

let contents t = Buffer.contents t.buf

let to_file path f =
  let t = create ~initial_size:4096 () in
  f t;
  Buffer.add_char t.buf '\n';
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc t.buf)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escaped s =
  let buf = Buffer.create (String.length s + 8) in
  add_escaped buf s;
  Buffer.contents buf

(* Emit the comma owed by the previous sibling, if any. *)
let start_value t = if t.comma then Buffer.add_char t.buf ','
let finish_value t = t.comma <- true

let add_quoted t s =
  Buffer.add_char t.buf '"';
  add_escaped t.buf s;
  Buffer.add_char t.buf '"'

let obj t f =
  start_value t;
  Buffer.add_char t.buf '{';
  t.comma <- false;
  f t;
  Buffer.add_char t.buf '}';
  finish_value t

let arr t f =
  start_value t;
  Buffer.add_char t.buf '[';
  t.comma <- false;
  f t;
  Buffer.add_char t.buf ']';
  finish_value t

let string t s =
  start_value t;
  add_quoted t s;
  finish_value t

let int t n =
  start_value t;
  Buffer.add_string t.buf (string_of_int n);
  finish_value t

let null t =
  start_value t;
  Buffer.add_string t.buf "null";
  finish_value t

let float ?(prec = 6) t v =
  if Float.is_finite v then begin
    start_value t;
    Buffer.add_string t.buf (Printf.sprintf "%.*f" prec v);
    finish_value t
  end
  else null t

let bool t b =
  start_value t;
  Buffer.add_string t.buf (if b then "true" else "false");
  finish_value t

let raw t s =
  start_value t;
  Buffer.add_string t.buf s;
  finish_value t

let field t name f =
  start_value t;
  add_quoted t name;
  Buffer.add_char t.buf ':';
  t.comma <- false;
  f t;
  finish_value t

let field_string t name v = field t name (fun t -> string t v)
let field_int t name v = field t name (fun t -> int t v)
let field_float ?prec t name v = field t name (fun t -> float ?prec t v)
let field_bool t name v = field t name (fun t -> bool t v)
let field_null t name = field t name null
