(** Sharded process-wide metrics with a merge-to-snapshot API.

    Design: every metric owns [shards] independent arrays of atomic
    cells; an increment touches only the cell picked by the calling
    domain's id, so hot-path increments from concurrent domains never
    contend on one cache line. Reads ({!snapshot}) merge the shards —
    reading is rare and slow-path by construction.

    Metrics are {b disabled by default}: every increment is then a
    single atomic load and branch, with zero allocation, so leaving the
    instrumentation compiled into the solver hot path costs noise-level
    time (verified by the bench baseline). Enable with {!enable} (the
    CLIs do this when [--metrics FILE] is passed).

    Metrics are registered by name in a global registry; registering the
    same name twice returns the same metric (the [Game] and [Unary]
    solvers share the ["game.nodes_by_k"] vector this way). Increments
    placed directly beside the engine's own counters (e.g. the cache's
    hit/miss atomics) guarantee that a merged snapshot sums exactly to
    the engine's global totals. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Number of shards per metric (a power of two). *)
val shards : int

(** {1 Scalar counters} *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

(** {1 Vector counters} — counters bucketed by a small integer index
    (rounds remaining, worker id, …). Out-of-range indices clamp to the
    nearest end bucket. *)

type vec

val vec : ?buckets:int -> string -> vec
val vec_incr : vec -> int -> unit
val vec_add : vec -> int -> int -> unit

(** {1 Histograms} — log₂-bucketed: an observation [v] lands in bucket
    0 when [v <= 0], else in bucket [floor(log2 v) + 1], so bucket [i]
    (for [i >= 1]) counts observations in [[2^(i-1), 2^i)). *)

type histogram

val histogram : string -> histogram
val observe : histogram -> int -> unit

(** {1 Timers} — wall-clock latency histograms on log₂ {e nanosecond}
    buckets (same bucket convention as {!histogram}). Snapshots report
    p50/p95/p99 alongside the raw buckets; disabled, {!time} is a
    single atomic load and branch followed by the call — no clock is
    read, nothing allocates beyond the caller's closure. *)

type timer

val timer : string -> timer

(** [time t f] runs [f], landing the elapsed wall-clock nanoseconds in
    [t] (also on exceptional exit, via [Fun.protect]). *)
val time : timer -> (unit -> 'a) -> 'a

(** Record an already-measured duration, in nanoseconds. *)
val observe_ns : timer -> int -> unit

(** [percentile buckets q] estimates the [q]-quantile (q in [0, 1]) of
    a log₂-bucketed histogram by linear interpolation inside the bucket
    the rank falls in. 0 when the histogram is empty. Exposed for the
    fleet aggregator and tests. *)
val percentile : int array -> float -> float

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Vec of int array
  | Histogram of int array  (** trailing zero buckets trimmed *)
  | Timer of int array  (** log₂-ns buckets, trailing zeros trimmed *)

(** Merged view of every registered metric, sorted by name. *)
val snapshot : unit -> (string * value) list

val total : value -> int

(** Zero every cell of every registered metric (counts only; the
    registry itself persists). *)
val reset : unit -> unit

(** Serialize the merged snapshot ([efgame-metrics/2]): top-level
    [schema], [shards], [counters], [vecs], [histograms], [timers]
    (count, p50/p95/p99 in ns, raw buckets), and [totals] (grand total
    per metric, across buckets; a timer's total is its observation
    count). *)
val write_json : Jsonw.t -> unit

val dump : path:string -> unit
