(** Minimal streaming JSON writer.

    One writer backs every JSON emitter in the repo (scan reports, bench
    reports, metrics snapshots, trace files), so string escaping and
    number formatting live in exactly one place. The writer is a thin
    state machine over a {!Buffer.t}: it tracks only whether a comma is
    due before the next value, so well-formedness is the caller's
    responsibility at the level of "one value per [field]" — the
    combinator shape ([obj]/[arr] take a closure) makes malformed
    nesting hard to express. Not thread-safe; build per-domain fragments
    separately and stitch them (see {!Obs.Trace}). *)

type t

val create : ?initial_size:int -> unit -> t
val contents : t -> string

(** [to_file path f] writes the document produced by [f] to [path]
    atomically enough for our purposes (single [open_out]/[close_out]). *)
val to_file : string -> (t -> unit) -> unit

(** JSON string escaping: quotes, backslash, and all control characters
    (as [\uXXXX], with the usual short forms for [\n] [\r] [\t]). *)
val escaped : string -> string

(** {1 Values} — usable at the top level or inside [arr]/[field]. *)

val obj : t -> (t -> unit) -> unit
val arr : t -> (t -> unit) -> unit
val string : t -> string -> unit
val int : t -> int -> unit

(** [float ?prec w v] prints [v] with [prec] decimal places (default 6).
    Non-finite floats become [null] — JSON has no representation. *)
val float : ?prec:int -> t -> float -> unit

val bool : t -> bool -> unit
val null : t -> unit

(** Verbatim splice of an already-serialized JSON value. *)
val raw : t -> string -> unit

(** {1 Object members} — only valid inside [obj]. *)

val field : t -> string -> (t -> unit) -> unit
val field_string : t -> string -> string -> unit
val field_int : t -> string -> int -> unit
val field_float : ?prec:int -> t -> string -> float -> unit
val field_bool : t -> string -> bool -> unit
val field_null : t -> string -> unit
