(** Flight recorder: a fixed-size lock-free ring of recent lifecycle
    events, dumped to a [flight.json] post-mortem on signals, at exit,
    and on every telemetry tick (so even a SIGKILLed worker leaves a
    last-moments record no older than one tick).

    Recording is wait-free (one fetch-and-add, one atomic store) and,
    when the recorder is disabled, a single atomic load and branch —
    the same hot-path contract as disabled {!Metrics} increments. The
    ring keeps the newest [capacity] events; older ones are overwritten
    and counted in the dump's [dropped] field. *)

type event = { seq : int; t_s : float; kind : string; detail : string }

val enable : ?capacity:int -> unit -> unit
(** Arm the recorder with a fresh ring (default capacity 256). *)

val disable : unit -> unit
val enabled : unit -> bool

val record : ?detail:string -> string -> unit
(** [record ~detail kind] appends an event. Callers with expensive
    [detail] strings should guard on {!enabled} before building them. *)

val recent : unit -> event list
(** The surviving events, oldest first. Empty when disabled. *)

val recorded : unit -> int
(** Total events ever recorded (≥ [List.length (recent ())]). *)

val capacity : unit -> int

val write_json : Jsonw.t -> unit
(** The [efgame-flight/1] document: pid, capacity, recorded, dropped,
    and the surviving events oldest-first. *)

val dump : path:string -> unit
(** Atomically (tmp+rename) write the flight file. No-op when disabled;
    I/O failures are swallowed — a post-mortem writer must never be the
    thing that crashes. Safe to call repeatedly; each dump replaces the
    previous one whole. *)
