let now_s () = Unix.gettimeofday ()
let now_us () = Unix.gettimeofday () *. 1e6

(* gettimeofday resolves to ~1µs; the ns unit is for bucket arithmetic
   (log₂-ns timer histograms), not for claiming ns-accurate clocks.
   2^62 ns ≈ 146 years past the epoch, so the tagged int never wraps. *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
