(* The flight recorder: a fixed-size lock-free ring of the most recent
   structured lifecycle events (lease claims, retries, checkpoints,
   quarantines, signals). Recording is wait-free — one fetch-and-add
   claims a sequence number, one atomic store publishes the slot — so
   the sites can live on supervision and persistence paths permanently.
   A dump can race recorders; it reads each slot once and keeps
   whatever sequence-consistent prefix it saw, which is exactly the
   guarantee a post-mortem wants: the last moments, possibly missing a
   write that was in flight when we died. *)

type event = { seq : int; t_s : float; kind : string; detail : string }

type ring = {
  cap : int;
  slots : event option Atomic.t array;
  cursor : int Atomic.t;
}

(* [None] = disabled: recording is then one atomic load and a branch,
   the same contract as disabled [Metrics] increments. *)
let state : ring option Atomic.t = Atomic.make None

let default_capacity = 256

let enable ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  Atomic.set state
    (Some
       {
         cap = capacity;
         slots = Array.init capacity (fun _ -> Atomic.make None);
         cursor = Atomic.make 0;
       })

let disable () = Atomic.set state None
let enabled () = Atomic.get state <> None

let capacity () =
  match Atomic.get state with None -> 0 | Some r -> r.cap

let recorded () =
  match Atomic.get state with None -> 0 | Some r -> Atomic.get r.cursor

let record ?(detail = "") kind =
  match Atomic.get state with
  | None -> ()
  | Some r ->
      let seq = Atomic.fetch_and_add r.cursor 1 in
      Atomic.set r.slots.(seq mod r.cap)
        (Some { seq; t_s = Clock.now_s (); kind; detail })

let recent () =
  match Atomic.get state with
  | None -> []
  | Some r ->
      Array.to_list r.slots
      |> List.filter_map Atomic.get
      |> List.sort (fun a b -> compare a.seq b.seq)

let write_json w =
  let events = recent () in
  Jsonw.obj w (fun w ->
      Jsonw.field_string w "schema" "efgame-flight/1";
      Jsonw.field_int w "pid" (Unix.getpid ());
      Jsonw.field_int w "capacity" (capacity ());
      Jsonw.field_int w "recorded" (recorded ());
      Jsonw.field_int w "dropped" (max 0 (recorded () - capacity ()));
      Jsonw.field w "events" (fun w ->
          Jsonw.arr w (fun w ->
              List.iter
                (fun e ->
                  Jsonw.obj w (fun w ->
                      Jsonw.field_int w "seq" e.seq;
                      Jsonw.field_float ~prec:6 w "t_s" e.t_s;
                      Jsonw.field_string w "kind" e.kind;
                      if e.detail <> "" then
                        Jsonw.field_string w "detail" e.detail))
                events)))

(* tmp + rename, like every snapshot this repo publishes: a reader (or
   the next dump) never sees a torn flight file. Dump failures are
   swallowed — the flight recorder must never turn a crash landing into
   a different crash. *)
let dump ~path =
  if enabled () then begin
    let w = Jsonw.create ~initial_size:4096 () in
    write_json w;
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    try
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Jsonw.contents w);
          output_char oc '\n');
      Sys.rename tmp path
    with Sys_error _ | Unix.Unix_error _ ->
      (try Sys.remove tmp with Sys_error _ -> ())
  end
