(* Live telemetry: a background tick thread that periodically publishes
   snapshots while the process works.

   The cardinal rule (see DESIGN.md): the tick thread owns ALL the
   I/O. The solve hot path only ever touches the sharded atomics it
   already touches for metrics; publishing reads them at its leisure.
   A slow or wedged disk can therefore delay telemetry, never the scan.

   Publishing is atomic (tmp + rename, the [Persist] discipline): a
   concurrent reader ([shard top], a human with [watch cat]) always
   sees a complete snapshot or the previous one, never a torn file. *)

type ticker = {
  interval : float;
  stop : bool Atomic.t;
  seq : int Atomic.t;
  fn : seq:int -> unit;
  thread : Thread.t;
}

let run_tick t =
  try t.fn ~seq:(Atomic.fetch_and_add t.seq 1)
  with _ -> () (* a failed publish must never kill the publisher *)

(* Thread.delay in small slices bounds stop latency without a condition
   variable (systhreads offer no timed wait); twenty wakeups a second
   in a sleeping thread is free next to a solver burning all cores. *)
let ticker ?(interval = 2.0) fn =
  let interval = Float.max 0.01 interval in
  let stop = Atomic.make false in
  let seq = Atomic.make 0 in
  let tick () = try fn ~seq:(Atomic.fetch_and_add seq 1) with _ -> () in
  let rec loop next =
    if not (Atomic.get stop) then begin
      let now = Unix.gettimeofday () in
      if now >= next then begin
        tick ();
        loop (now +. interval)
      end
      else begin
        Thread.delay (Float.min 0.05 (next -. now));
        loop next
      end
    end
  in
  (* first tick fires immediately: the snapshot file appears as soon as
     the process starts working, not one interval later *)
  let thread = Thread.create (fun () -> loop (Unix.gettimeofday ())) () in
  { interval; stop; seq; fn; thread }

(* The final publish runs on the stopping thread, after the join: when
   [stop] returns, the last snapshot is on disk and reflects the end
   state — the aggregator's totals can match the process's own final
   report exactly. *)
let stop t =
  Atomic.set t.stop true;
  Thread.join t.thread;
  run_tick t

let tick_now = run_tick

(* ------------------------------------------------- snapshot publisher *)

(* Publish failures (ENOSPC, EIO, a vanished directory) degrade
   gracefully: count them, warn ONCE, keep ticking, and note the
   recovery when writes start landing again. Telemetry must never crash
   or spam the process it observes. *)
let m_write_failures = Metrics.counter "obs.telemetry_write_failures"
let write_degraded = Atomic.make false

let write_atomic ~path f =
  let w = Jsonw.create ~initial_size:4096 () in
  f w;
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  try
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Jsonw.contents w);
        output_char oc '\n');
    Sys.rename tmp path;
    if Atomic.exchange write_degraded false then
      Log.info ~tag:"obs" "telemetry publishing recovered (%s)" path
  with
  | (Sys_error _ | Unix.Unix_error _) as exn ->
      let msg =
        match exn with
        | Sys_error m -> m
        | Unix.Unix_error (e, _, arg) -> Unix.error_message e ^ ": " ^ arg
        | _ -> assert false
      in
      Metrics.incr m_write_failures;
      (try Sys.remove tmp with Sys_error _ -> ());
      if not (Atomic.exchange write_degraded true) then
        Log.warn ~tag:"obs"
          "telemetry write failed (%s); continuing without snapshots until \
           the filesystem recovers" msg

let write_snapshot ~path ~started ~env ~progress ~seq =
  let now = Clock.now_s () in
  write_atomic ~path (fun w ->
      Jsonw.obj w (fun w ->
          Jsonw.field_string w "schema" "efgame-telemetry/1";
          Jsonw.field_int w "pid" (Unix.getpid ());
          Jsonw.field_int w "seq" seq;
          Jsonw.field_float ~prec:6 w "started_s" started;
          Jsonw.field_float ~prec:6 w "now_s" now;
          Jsonw.field_float ~prec:3 w "uptime_s" (now -. started);
          Jsonw.field w "env" (fun w -> Env.emit env w);
          Jsonw.field w "progress" (fun w ->
              Jsonw.obj w (fun w ->
                  List.iter
                    (fun (k, v) -> Jsonw.field_int w k v)
                    (progress ())));
          Jsonw.field w "metrics" Metrics.write_json))

type t = { ticker : ticker }

let start ?interval ?flight ?(progress = fun () -> []) ~path () =
  let started = Clock.now_s () in
  let env = Env.capture () in
  let publish ~seq =
    write_snapshot ~path ~started ~env ~progress ~seq;
    match flight with Some fp -> Events.dump ~path:fp | None -> ()
  in
  { ticker = ticker ?interval publish }

let publish t = tick_now t.ticker
let stop_publisher t = stop t.ticker
