let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on
let shards = 16

type kind = C | V | H | T

type metric = {
  kind : kind;
  buckets : int;
  cells : int Atomic.t array array; (* shard -> bucket *)
}

type counter = metric
type vec = metric
type histogram = metric
type timer = metric

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32
let reg_mu = Mutex.create ()

(* 63 buckets cover floor(log2 v) + 1 for any positive tagged int *)
let hist_buckets = 63

let register name kind buckets =
  Mutex.protect reg_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m ->
          if m.kind <> kind then
            invalid_arg
              (Printf.sprintf
                 "Obs.Metrics.%S: re-registered with a different kind" name);
          m
      | None ->
          let m =
            {
              kind;
              buckets;
              cells =
                Array.init shards (fun _ ->
                    Array.init buckets (fun _ -> Atomic.make 0));
            }
          in
          Hashtbl.add registry name m;
          m)

let counter name = register name C 1
let vec ?(buckets = 16) name = register name V (max 1 buckets)
let histogram name = register name H hist_buckets
let timer name = register name T hist_buckets

(* Domain ids are small consecutive ints; the low bits spread live
   domains across distinct shards. *)
let[@inline] shard () = (Domain.self () :> int) land (shards - 1)

let[@inline] clamp m i =
  if i < 0 then 0 else if i >= m.buckets then m.buckets - 1 else i

let incr c = if Atomic.get on then Atomic.incr c.cells.(shard ()).(0)

let add c n =
  if Atomic.get on then ignore (Atomic.fetch_and_add c.cells.(shard ()).(0) n)

let vec_incr v i =
  if Atomic.get on then Atomic.incr v.cells.(shard ()).(clamp v i)

let vec_add v i n =
  if Atomic.get on then
    ignore (Atomic.fetch_and_add v.cells.(shard ()).(clamp v i) n)

let log2_bucket v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and n = ref v in
    while !n > 0 do
      b := !b + 1;
      n := !n lsr 1
    done;
    !b (* floor(log2 v) + 1 *)
  end

let observe h v =
  if Atomic.get on then Atomic.incr h.cells.(shard ()).(clamp h (log2_bucket v))

let observe_ns = observe

(* Disabled, [time] is the same one-load-and-branch as every other
   increment, then a plain call — no timestamps are taken. Enabled, the
   wall-clock delta lands in the log₂-ns bucket even on exceptional
   exit, so a timer's count always matches the number of calls. *)
let time t f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () -> observe_ns t (Clock.now_ns () - t0))
      f
  end

(* Bucket 0 holds v <= 0 (treated as [0, 1)); bucket i >= 1 holds
   [2^(i-1), 2^i). Percentile estimation interpolates linearly inside
   the bucket the rank falls in — exact at bucket boundaries, at most a
   factor-2 bucket width off inside, which is the precision log₂
   buckets buy. *)
let bucket_bounds i =
  if i <= 0 then (0., 1.)
  else (Float.pow 2. (float_of_int (i - 1)), Float.pow 2. (float_of_int i))

let percentile buckets q =
  let q = Float.max 0. (Float.min 1. q) in
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then 0.
  else begin
    let rank = q *. float_of_int total in
    let n = Array.length buckets in
    let rec go i cum =
      if i >= n then snd (bucket_bounds (n - 1))
      else
        let cum' = cum + buckets.(i) in
        if buckets.(i) > 0 && float_of_int cum' >= rank then begin
          let lo, hi = bucket_bounds i in
          let into = (rank -. float_of_int cum) /. float_of_int buckets.(i) in
          lo +. ((hi -. lo) *. into)
        end
        else go (i + 1) cum'
    in
    go 0 0
  end

type value =
  | Counter of int
  | Vec of int array
  | Histogram of int array
  | Timer of int array

let merge m =
  let out = Array.make m.buckets 0 in
  Array.iter
    (fun row ->
      Array.iteri (fun i cell -> out.(i) <- out.(i) + Atomic.get cell) row)
    m.cells;
  out

let trim_trailing_zeros a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  Array.sub a 0 !n

let snapshot () =
  let items =
    Mutex.protect reg_mu (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  items
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.map (fun (name, m) ->
         let merged = merge m in
         let v =
           match m.kind with
           | C -> Counter merged.(0)
           | V -> Vec merged
           | H -> Histogram (trim_trailing_zeros merged)
           | T -> Timer (trim_trailing_zeros merged)
         in
         (name, v))

let total = function
  | Counter n -> n
  | Vec a | Histogram a | Timer a -> Array.fold_left ( + ) 0 a

let reset () =
  Mutex.protect reg_mu (fun () ->
      Hashtbl.iter
        (fun _ m ->
          Array.iter
            (fun row -> Array.iter (fun cell -> Atomic.set cell 0) row)
            m.cells)
        registry)

let write_json w =
  let snap = snapshot () in
  let filter f = List.filter_map (fun (n, v) -> f n v) snap in
  Jsonw.obj w (fun w ->
      Jsonw.field_string w "schema" "efgame-metrics/2";
      Jsonw.field_bool w "enabled" (enabled ());
      Jsonw.field_int w "shards" shards;
      let buckets_field key sel =
        Jsonw.field w key (fun w ->
            Jsonw.obj w (fun w ->
                List.iter
                  (fun (name, a) ->
                    Jsonw.field w name (fun w ->
                        Jsonw.arr w (fun w -> Array.iter (Jsonw.int w) a)))
                  (filter sel)))
      in
      Jsonw.field w "counters" (fun w ->
          Jsonw.obj w (fun w ->
              List.iter
                (fun (name, n) -> Jsonw.field_int w name n)
                (filter (fun n -> function Counter c -> Some (n, c) | _ -> None))));
      buckets_field "vecs" (fun n -> function Vec a -> Some (n, a) | _ -> None);
      buckets_field "histograms" (fun n ->
        function Histogram a -> Some (n, a) | _ -> None);
      Jsonw.field w "timers" (fun w ->
          Jsonw.obj w (fun w ->
              List.iter
                (fun (name, a) ->
                  Jsonw.field w name (fun w ->
                      Jsonw.obj w (fun w ->
                          Jsonw.field_int w "count"
                            (Array.fold_left ( + ) 0 a);
                          Jsonw.field_float ~prec:1 w "p50_ns"
                            (percentile a 0.50);
                          Jsonw.field_float ~prec:1 w "p95_ns"
                            (percentile a 0.95);
                          Jsonw.field_float ~prec:1 w "p99_ns"
                            (percentile a 0.99);
                          Jsonw.field w "buckets" (fun w ->
                              Jsonw.arr w (fun w ->
                                  Array.iter (Jsonw.int w) a)))))
                (filter (fun n -> function Timer a -> Some (n, a) | _ -> None))));
      Jsonw.field w "totals" (fun w ->
          Jsonw.obj w (fun w ->
              List.iter
                (fun (name, v) -> Jsonw.field_int w name (total v))
                snap)))

let dump ~path = Jsonw.to_file path write_json
