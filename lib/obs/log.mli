(** Leveled stderr logger.

    Replaces the ad-hoc [[scan]]/[[table]] [Format.eprintf] lines in the
    binaries: every diagnostic goes through one of {!err}/{!warn}/
    {!info}/{!debug} with an optional [~tag] (rendered as the familiar
    [[tag] ] prefix), and the level threshold is set once from the CLI
    flags via {!setup}. Lines are serialized through a mutex so progress
    messages from concurrent domains never interleave mid-line. Results
    (tables, verdicts) still go to stdout — this is for diagnostics. *)

type level = Error | Warn | Info | Debug

(** Every line carries temporal context:
    ["<iso-8601-utc> +<elapsed>ms \[tag\] severity: msg"] — wall-clock
    UTC with millisecond precision for cross-host correlation, elapsed
    milliseconds since process start for in-process phase timing. *)

val set_level : level -> unit
val level : unit -> level
val enabled : level -> bool

(** [setup ~quiet ~verbosity ()] maps CLI flags to a threshold:
    [quiet] ⇒ {!Error} only; [verbosity >= 1] ⇒ {!Debug}; otherwise the
    default {!Info} (which preserves the pre-Obs behaviour of always
    showing scan/table progress). [quiet] wins over [-v]. *)
val setup : ?quiet:bool -> ?verbosity:int -> unit -> unit

(** [iso8601 t] renders a Unix timestamp as UTC
    ["YYYY-MM-DDThh:mm:ss.mmmZ"] — the prefix every log line carries.
    Exposed so tests can round-trip the format. *)
val iso8601 : float -> string

(** Milliseconds since this process loaded the library. *)
val elapsed_ms : unit -> int

val err : ?tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ?tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ?tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val debug : ?tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
