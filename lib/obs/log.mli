(** Leveled stderr logger.

    Replaces the ad-hoc [[scan]]/[[table]] [Format.eprintf] lines in the
    binaries: every diagnostic goes through one of {!err}/{!warn}/
    {!info}/{!debug} with an optional [~tag] (rendered as the familiar
    [[tag] ] prefix), and the level threshold is set once from the CLI
    flags via {!setup}. Lines are serialized through a mutex so progress
    messages from concurrent domains never interleave mid-line. Results
    (tables, verdicts) still go to stdout — this is for diagnostics. *)

type level = Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level
val enabled : level -> bool

(** [setup ~quiet ~verbosity ()] maps CLI flags to a threshold:
    [quiet] ⇒ {!Error} only; [verbosity >= 1] ⇒ {!Debug}; otherwise the
    default {!Info} (which preserves the pre-Obs behaviour of always
    showing scan/table progress). [quiet] wins over [-v]. *)
val setup : ?quiet:bool -> ?verbosity:int -> unit -> unit

val err : ?tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ?tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ?tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
val debug : ?tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
