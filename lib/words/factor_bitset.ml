(* Succinct factor sets: dense integer ids for Facs(w) assigned from the
   suffix automaton's end-position classes, with factor-set membership,
   concatenation and affix queries all answered by automaton walks over
   the original word — no substring is ever materialized on a query
   path. The packed solver engine ({!Efgame.Packed}) manipulates factors
   exclusively through these ids. *)

type t = {
  word : string;
  sa : Suffix_automaton.t;
  size : int; (* distinct factors, including ε (id 0) *)
  base : int array; (* state -> id of its class's shortest factor *)
  minlen : int array; (* state -> shortest factor length in its class *)
  state_of_id : int array; (* id -> owning automaton state *)
  len_of_id : int array;
  start_of_id : int array; (* id -> start offset of a representative occurrence *)
  word_prefix : Bytes.t; (* bitset: factor is a prefix of [word] *)
  word_suffix : Bytes.t; (* bitset: factor is a suffix of [word] *)
  concat_memo : (int, int) Hashtbl.t; (* i * size + j -> id + 1; 0 = ∉ Facs *)
}

(* ------------------------------------------------------------ bitsets *)

module Bitset = struct
  type t = Bytes.t

  let create n = Bytes.make ((n + 7) / 8) '\x00'

  let mem b i =
    Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let add b i =
    Bytes.unsafe_set b (i lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get b (i lsr 3)) lor (1 lsl (i land 7))))

  let remove b i =
    Bytes.unsafe_set b (i lsr 3)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get b (i lsr 3))
         land lnot (1 lsl (i land 7))))

  let clear b = Bytes.fill b 0 (Bytes.length b) '\x00'
end

(* ------------------------------------------------------------- build *)

let of_word word =
  let sa = Suffix_automaton.build word in
  let nstates = Suffix_automaton.state_count sa in
  let base = Array.make nstates 0 in
  let minlen = Array.make nstates 0 in
  let next_id = ref 1 in
  for v = 1 to nstates - 1 do
    let link = Suffix_automaton.state_link sa v in
    minlen.(v) <- Suffix_automaton.state_len sa link + 1;
    base.(v) <- !next_id;
    next_id := !next_id + (Suffix_automaton.state_len sa v - minlen.(v)) + 1
  done;
  let size = !next_id in
  let state_of_id = Array.make size 0 in
  let len_of_id = Array.make size 0 in
  let start_of_id = Array.make size 0 in
  for v = 1 to nstates - 1 do
    let fe = Suffix_automaton.state_first_end sa v in
    for l = minlen.(v) to Suffix_automaton.state_len sa v do
      let id = base.(v) + (l - minlen.(v)) in
      state_of_id.(id) <- v;
      len_of_id.(id) <- l;
      start_of_id.(id) <- fe - l
    done
  done;
  let word_prefix = Bitset.create size and word_suffix = Bitset.create size in
  let id_at state len =
    if len = 0 then 0 else base.(state) + (len - minlen.(state))
  in
  let n = String.length word in
  Bitset.add word_prefix 0;
  Bitset.add word_suffix 0;
  let st = ref 0 in
  for i = 0 to n - 1 do
    st := Option.get (Suffix_automaton.step sa !st word.[i]);
    Bitset.add word_prefix (id_at !st (i + 1))
  done;
  for i = n - 1 downto 0 do
    let st = ref 0 in
    (* walking each suffix is O(n²) total; build is already O(n²) ids *)
    for j = i to n - 1 do
      st := Option.get (Suffix_automaton.step sa !st word.[j])
    done;
    Bitset.add word_suffix (id_at !st (n - i))
  done;
  {
    word;
    sa;
    size;
    base;
    minlen;
    state_of_id;
    len_of_id;
    start_of_id;
    word_prefix;
    word_suffix;
    concat_memo = Hashtbl.create 256;
  }

(* ----------------------------------------------------------- queries *)

let word t = t.word
let size t = t.size
let length t i = t.len_of_id.(i)
let start t i = t.start_of_id.(i)
let extract t i = String.sub t.word t.start_of_id.(i) t.len_of_id.(i)
let is_word_prefix t i = Bitset.mem t.word_prefix i
let is_word_suffix t i = Bitset.mem t.word_suffix i

let id_at t state len =
  if len = 0 then 0 else t.base.(state) + (len - t.minlen.(state))

(* Walk [len] characters of [word] starting at offset [off], from automaton
   state [st]; -1 when the walk falls off the automaton. *)
let walk_range t st off len =
  let rec go st i =
    if i = len then st
    else
      match Suffix_automaton.step t.sa st t.word.[off + i] with
      | Some st' -> go st' (i + 1)
      | None -> -1
  in
  go st 0

let id_of_sub t s ~off ~len =
  (* membership of a substring of a foreign string: same walk as [id_of]
     but over [s] directly, so cross-index lookups allocate nothing *)
  let rec go st i =
    if i = len then id_at t st len
    else
      match Suffix_automaton.step t.sa st s.[off + i] with
      | Some st' -> go st' (i + 1)
      | None -> -1
  in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Factor_bitset.id_of_sub";
  go 0 0

let id_of t u =
  let rec go st i =
    if i = String.length u then Some (id_at t st (String.length u))
    else
      match Suffix_automaton.step t.sa st u.[i] with
      | Some st' -> go st' (i + 1)
      | None -> None
  in
  go 0 0

let concat t i j =
  if i = 0 then j
  else if j = 0 then i
  else
    let key = (i * t.size) + j in
    match Hashtbl.find_opt t.concat_memo key with
    | Some r -> r - 1
    | None ->
        let li = t.len_of_id.(i) and lj = t.len_of_id.(j) in
        let r =
          if li + lj > String.length t.word then -1
          else
            let st =
              walk_range t t.state_of_id.(i) t.start_of_id.(j) lj
            in
            if st < 0 then -1 else id_at t st (li + lj)
        in
        Hashtbl.add t.concat_memo key (r + 1);
        r

let sub_id t i ~off ~len =
  (* any substring of a factor is a factor, so the walk cannot fail *)
  if off < 0 || len < 0 || off + len > t.len_of_id.(i) then
    invalid_arg "Factor_bitset.sub_id";
  id_at t (walk_range t 0 (t.start_of_id.(i) + off) len) len

let is_prefix_of t i j =
  let li = t.len_of_id.(i) and lj = t.len_of_id.(j) in
  li <= lj
  &&
  let si = t.start_of_id.(i) and sj = t.start_of_id.(j) in
  let rec go k = k = li || (t.word.[si + k] = t.word.[sj + k] && go (k + 1)) in
  go 0

let is_suffix_of t i j =
  let li = t.len_of_id.(i) and lj = t.len_of_id.(j) in
  li <= lj
  &&
  let si = t.start_of_id.(i) and sj = t.start_of_id.(j) + (lj - li) in
  let rec go k = k = li || (t.word.[si + k] = t.word.[sj + k] && go (k + 1)) in
  go 0

let equal_factors t i u =
  (* does factor [i] spell exactly the string [u]? char compare, no alloc *)
  let li = t.len_of_id.(i) in
  li = String.length u
  &&
  let si = t.start_of_id.(i) in
  let rec go k = k = li || (t.word.[si + k] = u.[k] && go (k + 1)) in
  go 0
