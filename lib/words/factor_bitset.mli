(** Succinct factor sets backed by the suffix automaton.

    [Facs(w)] with every factor represented by a dense integer id derived
    from the automaton's end-position classes: state [v] owns the
    contiguous id block of its class (lengths
    [state_len (link v) + 1 .. state_len v]), and ε is id 0. All queries
    — membership, concatenation, affix tests — are automaton walks or
    character comparisons against the original word; no query ever
    allocates a substring. This is the factor representation of the
    packed solver engine ({!Efgame.Packed}); the explicit string-keyed
    {!Factors} set remains the boxed engine's representation, and the two
    are differentially tested against each other.

    Ids are {e not} ordered by length or lexicographically (they follow
    automaton state numbering); callers needing a semantic order sort ids
    once at setup via {!extract}. *)

type t

val of_word : string -> t
(** Build the index: suffix automaton + id assignment + word-prefix /
    word-suffix bitsets. O(|w|²) for the id tables (there are up to
    |w|(|w|+1)/2 + 1 distinct factors), O(|w| · |Σ|) for the automaton. *)

val word : t -> string
val size : t -> int
(** Number of distinct factors, including ε. Ids are [0 .. size - 1]. *)

val id_of : t -> string -> int option
(** O(|u|) membership + interning walk. [id_of t "" = Some 0]. *)

val id_of_sub : t -> string -> off:int -> len:int -> int
(** Id of the substring [s.[off .. off+len-1]] of a foreign string [s],
    or -1 when it is not a factor — the cross-index lookup used to map a
    factor of one word into the factor set of another without
    allocating. *)

val extract : t -> int -> string
(** The factor as a string (allocates; setup/diagnostic use only). *)

val length : t -> int -> int
val start : t -> int -> int
(** Start offset of a representative (leftmost) occurrence in [word t]. *)

val is_word_prefix : t -> int -> bool
val is_word_suffix : t -> int -> bool
(** Bitset tests: is the factor a prefix (suffix) of the whole word? *)

val concat : t -> int -> int -> int
(** [concat t i j] is the id of factor [i] · factor [j] when the
    concatenation is itself a factor, and -1 otherwise. Memoized; the
    uncached cost is a walk of [length t j] transitions. *)

val sub_id : t -> int -> off:int -> len:int -> int
(** Id of the given substring of factor [i] (always a factor). Raises
    [Invalid_argument] when the range is out of bounds. *)

val is_prefix_of : t -> int -> int -> bool
(** [is_prefix_of t i j]: is factor [i] a prefix of factor [j]? *)

val is_suffix_of : t -> int -> int -> bool

val equal_factors : t -> int -> string -> bool
(** Does factor [i] spell exactly [u]? Character comparison, no
    allocation. *)

(** Mutable bitsets over factor ids (or any dense int range): the
    candidate-exclusion and derived-deduplication scratch sets of the
    packed engine. *)
module Bitset : sig
  type t = Bytes.t

  val create : int -> t
  (** All-zeros bitset able to hold ids [0 .. n - 1]. *)

  val mem : t -> int -> bool
  val add : t -> int -> unit
  val remove : t -> int -> unit
  val clear : t -> unit
end
