(** Suffix automata: a linear-size index of all factors of a word.

    The suffix automaton of [w] is the minimal DFA of the suffix language
    of [w]; its states correspond to end-position equivalence classes, and
    every factor of [w] is readable from the initial state. It provides
    O(|u|) factor membership and an O(|w|) count of distinct factors —
    the asymptotically right substrate for Facs(w), differentially tested
    against the explicit {!Factors} set. *)

type t

val build : string -> t
(** Online construction (Blumer et al.), O(|w| · |Σ|). *)

val word : t -> string
val state_count : t -> int

val is_factor : t -> string -> bool
(** O(|u|) membership in Facs(word). *)

val count_factors : t -> int
(** Number of distinct factors, including ε. *)

val count_occurrences : t -> string -> int
(** Number of (possibly overlapping) occurrences of a factor; 0 when not a
    factor. *)

(** {1 Per-state access}

    Read-only view of the automaton's structure, for index builders
    ({!Factor_bitset}) that assign dense factor ids from the end-position
    classes. States are numbered [0 .. state_count t - 1]; 0 is the
    initial state. *)

val state_len : t -> int -> int
(** Length of the longest factor in the state's class. The class covers
    exactly the lengths [state_len t (state_link t v) + 1 .. state_len t v]. *)

val state_link : t -> int -> int
(** Suffix link (-1 for the initial state). *)

val state_first_end : t -> int -> int
(** Minimal end position (1-indexed, i.e. number of characters of [word t]
    consumed) at which the state's factors occur; every factor [u] of the
    class occurs as [word t[first_end - |u| .. first_end - 1]]. *)

val step : t -> int -> char -> int option
(** One DFA transition. *)
