type state = {
  mutable len : int;
  mutable link : int;
  mutable next : (char * int) list;
  mutable occurrences : int; (* endpos class size, filled after build *)
  mutable first_end : int; (* minimal end position (1-indexed) of the class *)
}

type t = { word : string; states : state array; size : int }

let build w =
  let n = String.length w in
  let cap = max 2 ((2 * n) + 2) in
  let states =
    Array.init cap (fun _ ->
        { len = 0; link = -1; next = []; occurrences = 0; first_end = 0 })
  in
  let size = ref 1 in
  let last = ref 0 in
  let get q c = List.assoc_opt c states.(q).next in
  let set q c tgt =
    states.(q).next <- (c, tgt) :: List.remove_assoc c states.(q).next
  in
  String.iter
    (fun c ->
      let cur = !size in
      incr size;
      states.(cur).len <- states.(!last).len + 1;
      states.(cur).occurrences <- 1;
      states.(cur).first_end <- states.(cur).len;
      let p = ref !last in
      while !p >= 0 && get !p c = None do
        set !p c cur;
        p := states.(!p).link
      done;
      (if !p = -1 then states.(cur).link <- 0
       else
         let q = Option.get (get !p c) in
         if states.(q).len = states.(!p).len + 1 then states.(cur).link <- q
         else begin
           let clone = !size in
           incr size;
           states.(clone).len <- states.(!p).len + 1;
           states.(clone).next <- states.(q).next;
           states.(clone).link <- states.(q).link;
           states.(clone).occurrences <- 0;
           states.(clone).first_end <- states.(q).first_end;
           while !p >= 0 && get !p c = Some q do
             set !p c clone;
             p := states.(!p).link
           done;
           states.(q).link <- clone;
           states.(cur).link <- clone
         end);
      last := cur)
    w;
  (* propagate endpos sizes up suffix links, processing by decreasing len *)
  let order = List.init !size Fun.id |> List.sort (fun a b -> compare states.(b).len states.(a).len) in
  List.iter
    (fun v ->
      let l = states.(v).link in
      if l >= 0 then states.(l).occurrences <- states.(l).occurrences + states.(v).occurrences)
    order;
  { word = w; states; size = !size }

let word t = t.word
let state_count t = t.size

(* Read-only per-state access for index builders ({!Factor_bitset}). *)
let state_len t v = t.states.(v).len
let state_link t v = t.states.(v).link
let state_first_end t v = t.states.(v).first_end
let step t v c = List.assoc_opt c t.states.(v).next

let walk t u =
  let rec go q i =
    if i = String.length u then Some q
    else
      match List.assoc_opt u.[i] t.states.(q).next with
      | Some q' -> go q' (i + 1)
      | None -> None
  in
  go 0 0

let is_factor t u = walk t u <> None

let count_factors t =
  (* each state contributes len(v) − len(link(v)) distinct factors; +1 for ε *)
  let total = ref 1 in
  for v = 1 to t.size - 1 do
    total := !total + t.states.(v).len - t.states.(t.states.(v).link).len
  done;
  !total

let count_occurrences t u =
  if u = "" then String.length t.word + 1
  else match walk t u with Some q -> t.states.(q).occurrences | None -> 0
