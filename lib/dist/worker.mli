(** The shard worker loop: claim → scan → persist → certify → release,
    until every shard in the directory is terminal or the driver stops.

    Failure handling is layered: transient I/O failures are retried
    in-lease with capped exponential backoff ({!Rt.Backoff.retry},
    renewing the heartbeat before each retry); a shard whose attempts
    are exhausted is {e re-enqueued} (partial outputs deleted, lease
    released, cross-worker retry counter bumped) for any worker to try
    afresh; a shard failing past [max_requeues] — or whose scan was
    Inconclusive, which retrying cannot fix — is {e quarantined} with a
    reason. A lease lost mid-scan abandons the shard uncertified: the
    reclaimer owns it now, and the work already done is harmless to
    repeat (deterministic scan, monotone merge).

    With [speculate] on, a worker with nothing claimable re-executes
    straggler-held shards (fresh lease, holder progressing far below
    the fleet's robust median rate — see {!Top}; at the drain tail,
    where too few holders remain for the robust cut, any shard held
    by someone else is backed up) under the shard's
    {e secondary} lease, into a separate [.spec.tbl]. The completion
    record's exclusive create is the single winner point: first record
    wins, the loser verifies the winner's content hash matches its own
    (deterministic scans) and discards its duplicate. Sound by DESIGN.md
    decision 10 — double execution is idempotent, so speculation can
    only ever waste cycles, never verdicts. *)

type config = {
  dir : string;
  ttl : float;  (** lease staleness threshold, seconds *)
  jobs : int;  (** solver domains per shard scan *)
  budget : int option;  (** per-pair node budget (solver default if None) *)
  attempts : int;  (** in-lease I/O attempts per shard (Rt.Backoff) *)
  max_requeues : int;  (** cross-worker retries before quarantine *)
  deadline : Rt.Deadline.t;
  fsync : bool;
  store_depth : int;
  heartbeat : float;
      (** telemetry heartbeat publish interval, seconds; [<= 0] turns
          the publisher off entirely (no tick thread, no [.hb] file) *)
  flight : string option;
      (** dump the {!Obs.Events} flight ring here on every heartbeat
          tick and at the end of the run, so a killed worker leaves a
          last-moments record no older than one tick *)
  speculate : bool;
      (** when idle, re-execute straggler-held shards under their
          secondary lease and race the holder to the record *)
  throttle : float option;
      (** cap the scan rate at this many pairs/s — a chaos/soak hook
          for manufacturing stragglers deterministically; [None] (the
          default) in any real deployment *)
}

val default_config : dir:string -> config
(** ttl 30 s, 1 job, 3 attempts, 2 re-enqueues, no deadline, fsync on,
    store depth 0, heartbeat every 2 s, no flight file, no speculation,
    no throttle. *)

type summary = {
  completed : int;
  claimed : int;
  reclaimed : int;  (** claims that reclaimed a stale lease *)
  abandoned : int;  (** leases lost mid-scan; shard left to its new owner *)
  requeued : int;
  quarantined : int;
  pairs : int;  (** pair verdicts computed across all shard scans *)
  speculated : int;  (** speculative re-executions started *)
  spec_wins : int;
      (** speculative records that landed first (each also counts in
          [completed]) *)
  deduped : int;
      (** own outputs discarded after losing a record race — the
          harmless cost of speculation, never lost verdicts *)
}

val zero_summary : summary

val run : ?stop:(unit -> bool) -> config -> (summary, string) result
(** Work the directory until every shard is Done or Quarantined, the
    [stop] callback fires, the deadline expires, or a latched signal is
    pending ({!Rt.Signal}). While other workers hold the remaining
    shards, polls at a fraction of the TTL waiting for them to finish or
    go stale. [Error] only on a missing or invalid manifest.

    With [heartbeat > 0] the worker advertises itself live via
    {!Heartbeat}: a tick thread publishes its [.hb] snapshot in [dir]
    every [heartbeat] seconds (the solve path only bumps atomics). The
    final snapshot is published synchronously before [run] returns, so
    an aggregate over the fleet's heartbeats matches the sum of the
    returned summaries exactly. *)
