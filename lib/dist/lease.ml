(* Shard ownership over a shared directory, with no coordinator.

   The protocol leans on exactly two filesystem guarantees:

   - [O_CREAT | O_EXCL] open is atomic: of N racing claimants, precisely
     one creates the lease file. That create is the linearization point
     of every claim.
   - [rename] of an existing file is atomic and fails with ENOENT for
     every caller but one. Reclaiming a stale lease renames it to a
     unique tombstone first; the single winner of that rename is the
     only process allowed to race for the re-create.

   Liveness is mtime: the holder bumps the lease's mtime as a heartbeat
   ({!renew}), and a lease whose mtime is older than the TTL is presumed
   dead and reclaimable. A wedged-but-alive holder can therefore lose
   its lease — which is why {!renew} re-reads the file and reports
   [`Lost] when the content no longer names this owner, and why the
   worker abandons (rather than completes) a shard whose lease it lost.
   Double execution during the handover window is harmless: shard scans
   are deterministic and the table merge is monotone, so re-running a
   shard is idempotent (see DESIGN.md). *)

let m_claimed = Obs.Metrics.counter "dist.shards_claimed"
let m_reclaimed = Obs.Metrics.counter "dist.shards_reclaimed"
let m_renewals = Obs.Metrics.counter "dist.lease_renewals"

type t = { path : string; owner : string }

let tomb_counter = Atomic.make 0

(* host:pid:nonce — unique across the fleet for the lifetime of a lease.
   The nonce guards against pid reuse on one host across a quick
   crash/restart cycle. *)
let default_owner () =
  Printf.sprintf "%s:%d:%08x"
    (Unix.gethostname ())
    (Unix.getpid ())
    (Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ()) land 0xffffffff)

let read_owner path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  with
  | data -> Some (String.trim data)
  | exception Sys_error _ -> None

let write_exclusive path content =
  match Unix.openfile path [ O_WRONLY; O_CREAT; O_EXCL; O_CLOEXEC ] 0o644 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let b = Bytes.of_string (content ^ "\n") in
          ignore (Unix.write fd b 0 (Bytes.length b)));
      true
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> false

let age path =
  match Unix.stat path with
  | st -> Some (Unix.gettimeofday () -. st.Unix.st_mtime)
  | exception Unix.Unix_error _ -> None

(* Move the stale lease aside; exactly one racer's rename succeeds, and
   that winner deletes the tombstone. The losers see ENOENT and go back
   to competing on the O_EXCL create like everyone else. *)
let reclaim_stale path =
  let tomb =
    Printf.sprintf "%s.stale.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tomb_counter 1)
  in
  match Sys.rename path tomb with
  | () ->
      (try Sys.remove tomb with Sys_error _ -> ());
      true
  | exception Sys_error _ -> false

let rec try_claim ?(attempts = 3) ~ttl ~owner path =
  if attempts <= 0 then `Held
  else if write_exclusive path owner then begin
    Obs.Metrics.incr m_claimed;
    Obs.Events.record ~detail:(Filename.basename path) "lease.claim";
    `Claimed { path; owner }
  end
  else
    match age path with
    | None ->
        (* the holder released between our create and our stat: retry *)
        try_claim ~attempts:(attempts - 1) ~ttl ~owner path
    | Some a when a > ttl ->
        if reclaim_stale path && write_exclusive path owner then begin
          Obs.Metrics.incr m_claimed;
          Obs.Metrics.incr m_reclaimed;
          Obs.Events.record ~detail:(Filename.basename path) "lease.reclaim";
          `Reclaimed { path; owner }
        end
        else
          (* lost the reclaim race, or a third party re-created first *)
          `Held
    | Some _ -> `Held

let renew t =
  match read_owner t.path with
  | Some owner when owner = t.owner -> (
      match Unix.utimes t.path 0. 0. with
      | () ->
          Obs.Metrics.incr m_renewals;
          Obs.Events.record ~detail:(Filename.basename t.path) "lease.renew";
          `Renewed
      | exception Unix.Unix_error _ ->
          Obs.Events.record ~detail:(Filename.basename t.path) "lease.lost";
          `Lost)
  | Some _ | None ->
      Obs.Events.record ~detail:(Filename.basename t.path) "lease.lost";
      `Lost

(* Only the owner removes its lease; a reclaimed lease names someone
   else and must be left alone. *)
let release t =
  match read_owner t.path with
  | Some owner when owner = t.owner -> (
      try Sys.remove t.path with Sys_error _ -> ())
  | Some _ | None -> ()

let holder path =
  match (read_owner path, age path) with
  | Some owner, Some age -> Some (owner, age)
  | _ -> None
