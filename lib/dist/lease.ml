(* Shard ownership over a shared directory, with no coordinator.

   The protocol leans on exactly two storage guarantees (Store's
   contract; see DESIGN.md decision 9):

   - [create_excl] is atomic: of N racing claimants, precisely one
     creates the lease file. That create is the linearization point of
     every claim.
   - [rename] of an existing file is atomic and fails for every caller
     but one. Reclaiming a stale lease renames it to a unique tombstone
     first; the single winner of that rename is the only process
     allowed to race for the re-create.

   Liveness is mtime: the holder bumps the lease's mtime as a heartbeat
   ({!renew}), and a lease whose observed mtime is older than the TTL —
   plus the store's staleness margin, which absorbs coarse mtime
   granularity and bounded clock skew — is presumed dead. Presumption
   is not enough to reclaim: hostile stores (NFS-like mounts) can make
   a healthy lease look momentarily old, so a reclaim requires TWO
   observations of the SAME stale mtime separated by a grace interval
   at least the store's rename-visibility bound. A renewing holder
   changes the mtime between the observations and resets the clock; a
   genuinely dead one cannot.

   A wedged-but-alive holder can still lose its lease — which is why
   {!renew} re-reads the file and reports [`Lost] when the content no
   longer names this owner, and why the worker abandons (rather than
   completes) a shard whose lease it lost. Double execution during the
   handover window is harmless: shard scans are deterministic and the
   table merge is monotone, so re-running a shard is idempotent. *)

let m_claimed = Obs.Metrics.counter "dist.shards_claimed"
let m_reclaimed = Obs.Metrics.counter "dist.shards_reclaimed"
let m_renewals = Obs.Metrics.counter "dist.lease_renewals"

type t = { path : string; owner : string }

let tomb_counter = Atomic.make 0

(* host:pid:nonce — unique across the fleet for the lifetime of a lease.
   The nonce guards against pid reuse on one host across a quick
   crash/restart cycle. *)
let default_owner () =
  Printf.sprintf "%s:%d:%08x"
    (Unix.gethostname ())
    (Unix.getpid ())
    (Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ()) land 0xffffffff)

let read_owner path =
  match (Store.active ()).Store.read path with
  | Ok data -> Some (String.trim data)
  | Error _ -> None

let age path =
  let st = Store.active () in
  match st.Store.mtime path with
  | Ok m -> Some (st.Store.now () -. m)
  | Error _ -> None

(* Move the stale lease aside; exactly one racer's rename succeeds, and
   that winner deletes the tombstone. The losers see Absent and go back
   to competing on the exclusive create like everyone else. Tombstone
   handling is idempotent: a tombstone whose delete failed (or whose
   reclaimer died between rename and delete) is swept by
   {!sweep_tombstones} once it is old enough that no rename can still
   be in flight. *)
let reclaim_stale path =
  let st = Store.active () in
  let tomb =
    Printf.sprintf "%s.stale.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tomb_counter 1)
  in
  match st.Store.rename ~src:path ~dst:tomb with
  | Ok () ->
      ignore (st.Store.delete tomb);
      true
  | Error _ -> false

(* Two-observation reclaim bookkeeping, per process: the first time a
   path looks stale we only remember (mtime, when we saw it); reclaim
   is allowed when a later look — at least the grace interval after —
   finds the very same mtime. Any heartbeat in between changes the
   mtime and restarts the clock. *)
let observations : (string, float * float) Hashtbl.t = Hashtbl.create 16
let obs_mu = Mutex.create ()

let observe path m now =
  Mutex.protect obs_mu (fun () ->
      match Hashtbl.find_opt observations path with
      | Some (m0, t0) when m0 = m -> now -. t0
      | _ ->
          Hashtbl.replace observations path (m, now);
          0.)

let forget path = Mutex.protect obs_mu (fun () -> Hashtbl.remove observations path)

let claimed path owner how =
  Obs.Metrics.incr m_claimed;
  (match how with
  | `Claimed -> Obs.Events.record ~detail:(Filename.basename path) "lease.claim"
  | `Reclaimed ->
      Obs.Metrics.incr m_reclaimed;
      Obs.Events.record ~detail:(Filename.basename path) "lease.reclaim");
  forget path;
  match how with
  | `Claimed -> `Claimed { path; owner }
  | `Reclaimed -> `Reclaimed { path; owner }

let try_claim ?(attempts = 3) ?grace ~ttl ~owner path =
  let st = Store.active () in
  let margin = Store.stale_margin st in
  let grace =
    match grace with Some g -> g | None -> Store.reclaim_grace st ~ttl
  in
  let rec go attempts =
    if attempts <= 0 then `Held
    else
      match st.Store.create_excl path (owner ^ "\n") with
      | Ok () -> claimed path owner `Claimed
      | Error (Store.Io _) -> (
          (* ambiguous create: the file may or may not exist now, and
             may or may not be ours. Re-read to find out; if that too
             fails, give up the attempt — if our create did land, the
             orphan lease simply ages out and is reclaimed like any
             dead worker's. Never double-claimed, at worst delayed. *)
          match read_owner path with
          | Some o when o = owner -> claimed path owner `Claimed
          | Some _ -> `Held
          | None -> go (attempts - 1))
      | Error Store.Absent -> go (attempts - 1)
      | Error Store.Exists -> (
          (* our own earlier torn create can leave a lease that already
             names us: recognize it instead of waiting for it to rot *)
          match read_owner path with
          | Some o when o = owner -> claimed path owner `Claimed
          | _ -> (
              match st.Store.mtime path with
              | Error _ ->
                  (* the holder released between our create and our
                     stat (or the store flickered): retry *)
                  go (attempts - 1)
              | Ok m ->
                  let now = st.Store.now () in
                  if now -. m > ttl +. margin then begin
                    if observe path m now >= grace then begin
                      if reclaim_stale path then
                        match st.Store.create_excl path (owner ^ "\n") with
                        | Ok () -> claimed path owner `Reclaimed
                        | Error _ -> `Held
                      else `Held (* lost the reclaim race *)
                    end
                    else `Held (* stale once; confirm after the grace *)
                  end
                  else begin
                    forget path;
                    `Held
                  end))
  in
  go attempts

let renew t =
  let st = Store.active () in
  match st.Store.read t.path with
  | Ok data when String.trim data = t.owner -> (
      match st.Store.touch t.path with
      | Ok () ->
          Obs.Metrics.incr m_renewals;
          Obs.Events.record ~detail:(Filename.basename t.path) "lease.renew";
          `Renewed
      | Error Store.Absent ->
          Obs.Events.record ~detail:(Filename.basename t.path) "lease.lost";
          `Lost
      | Error _ ->
          (* a transient touch failure just ages the heartbeat a bit;
             the TTL margin absorbs it and the next renew catches up *)
          `Renewed)
  | Ok _ | Error Store.Absent ->
      Obs.Events.record ~detail:(Filename.basename t.path) "lease.lost";
      `Lost
  | Error _ ->
      (* can't tell — keep working. If we really were reclaimed, the
         new owner's scan is idempotent with ours; certify-time record
         writes stay atomic either way. *)
      `Renewed

(* Only the owner removes its lease; a reclaimed lease names someone
   else and must be left alone. *)
let release t =
  let st = Store.active () in
  match st.Store.read t.path with
  | Ok data when String.trim data = t.owner -> ignore (st.Store.delete t.path)
  | _ -> ()

let holder path =
  match (read_owner path, age path) with
  | Some owner, Some age -> Some (owner, age)
  | _ -> None

(* Orphaned tombstone sweep: a reclaimer that died between its rename
   and its delete leaves [path.stale.pid.n] behind. Tombstones carry no
   authority — deleting one is always safe — but only sweep those older
   than the TTL so a rename still in flight is never yanked from under
   its winner. *)
let sweep_tombstones ~dir ~ttl =
  let st = Store.active () in
  match st.Store.list dir with
  | Error _ -> 0
  | Ok names ->
      Array.fold_left
        (fun swept name ->
          let is_tomb =
            match String.index_opt name '.' with
            | None -> false
            | Some _ ->
                (* shard-NNNN.lease.stale.PID.N *)
                let rec has_stale = function
                  | [] | [ _ ] -> false
                  | "stale" :: _ :: _ -> true
                  | _ :: rest -> has_stale rest
                in
                has_stale (String.split_on_char '.' name)
          in
          if not is_tomb then swept
          else
            let path = Filename.concat dir name in
            match st.Store.mtime path with
            | Ok m when st.Store.now () -. m > ttl +. Store.stale_margin st ->
                (match st.Store.delete path with
                | Ok () -> swept + 1
                | Error _ -> swept)
            | _ -> swept)
        0 names
