(** Spot-audit of a merged frontier table: re-solve a seeded
    deterministic sample of pairs from scratch and compare against the
    table's recorded verdicts.

    The persistence layer's checksums defend against bad disks; this
    defends against bad {e computation} — a miscompiled worker, flaky
    RAM corrupting verdicts before they were checksummed, a tampered
    table re-checksummed to look clean. One mismatch means the table
    cannot be trusted: the monotone merge can drop entries but never
    alter them, so a wrong entry was wrong at birth.

    Sampling is SplitMix64 over the caller's seed — reproducible, and
    two auditors with one seed check the same pairs. Pairs the table
    holds no verdict for count as [absent], not failed: a shard that
    early-exited on a Found witness legitimately leaves its tail
    unscanned. *)

type mismatch = {
  p : int;
  q : int;
  table : bool;  (** the merged table's verdict: equivalent? *)
  fresh : Efgame.Game.verdict;  (** the independent re-solve *)
}

type t = {
  sample : int;  (** pairs drawn *)
  checked : int;  (** drawn pairs with a table verdict to check *)
  absent : int;  (** drawn pairs the table holds no verdict for *)
  unknown : int;  (** re-solves that exhausted their budget *)
  mismatches : mismatch list;
}

val passed : t -> bool

val audit :
  ?seed:int ->
  ?budget:int ->
  ?sample:int ->
  ?salvage:bool ->
  dir:string ->
  table:string ->
  unit ->
  (t, string) result
(** Audit [sample] (default 64) pairs of [table] against the manifest
    in [dir]. The re-solver warms a cache of its own — its verdicts
    never come from the table under audit. [Error] on a bad manifest or
    an unloadable table ([salvage] forwards to {!Efgame.Persist.load}). *)
