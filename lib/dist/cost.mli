(** Shard cost models: estimated solve work as a function of triangle
    position, so {!Manifest} can cut windows equal in expected {e work}
    instead of pair count (deep-q shards dominate wall time; equal-cost
    windows kill the fleet's drain tail).

    One parameter: [Power alpha] prices pair (p, q) at [(q+1)^alpha]
    ([q >= p] dominates); [Uniform] is the legacy equal-pair cut.
    {!calibrate} fits alpha from measured per-window wall times of a
    prior run (the [wall_ns] field of completion records), falling back
    to the static depth-based default when there is nothing to fit. *)

type model = Uniform | Power of float

val default_alpha : float
(** 2.0 — the static fallback exponent: solver nodes grow roughly
    quadratically in the word length. *)

val to_string : model -> string
(** ["uniform"] or ["power:<alpha>"] — the manifest wire form. *)

val of_string : string -> (model, string) result

val pair_cost : model -> int -> float
(** [pair_cost m q] — estimated cost of any pair in row [q]. *)

val window_cost : model -> int -> int -> float
(** [window_cost m lo hi] — Σ pair costs over the half-open index
    window [lo, hi). O(rows touched), not O(pairs). *)

val tile : model:model -> max_n:int -> shards:int -> (int * int) array
(** Cut the triangle for [max_n] into [shards] nonempty windows of
    near-equal model cost, tiling [0, total) exactly (capped at one
    pair per shard). [Invalid_argument] on nonsensical parameters. *)

type sample = { s_lo : int; s_hi : int; s_wall : float }
(** One measured window: index range plus wall seconds spent solving
    it. *)

val calibrate : ?fallback:model -> sample list -> model
(** Fit the exponent by deterministic grid search (alpha in [0, 4],
    step 0.05), minimizing least squares of the log residuals — the
    per-pair time constant is a free intercept, so only the {e shape}
    of the cost curve matters. Returns [fallback] (default
    [Power default_alpha]) with fewer than two usable samples. *)
