(** Atomic lease files: shard ownership over a shared directory with no
    coordinator, hardened for hostile stores.

    The protocol leans on two {!Store} guarantees: [create_excl] is
    atomic (of N racing claimants exactly one creates the file — the
    linearization point of every claim), and [rename] fails for all but
    one caller (reclaiming a stale lease renames it to a unique
    tombstone first, so exactly one reclaimer proceeds).

    Liveness is mtime: {!renew} bumps it as a heartbeat, and a lease
    whose observed age exceeds [ttl] {e plus the store's staleness
    margin} (mtime granularity + clock skew, {!Store.stale_margin}) is
    presumed dead. Reclaim additionally requires {e two} observations
    of the same stale mtime separated by a grace interval
    ({!Store.reclaim_grace}), so a heartbeat that is merely slow to
    become visible never loses a healthy holder its lease. A wedged but
    alive holder can still lose it; {!renew} detects this ([`Lost]) by
    re-reading the owner, and the worker then abandons the shard.
    Double execution during the handover window is harmless: shard
    scans are deterministic and the table merge is monotone, so
    re-running a shard is idempotent (DESIGN.md decisions 5 and 9). *)

type t = { path : string; owner : string }

val default_owner : unit -> string
(** [host:pid:nonce] — unique across the fleet for a lease's lifetime.
    The nonce guards against pid reuse through a crash/restart cycle. *)

val try_claim :
  ?attempts:int ->
  ?grace:float ->
  ttl:float ->
  owner:string ->
  string ->
  [ `Claimed of t | `Reclaimed of t | `Held ]
(** One claim attempt on a lease path. [`Claimed]: we created the lease
    (or recognized our own earlier ambiguous create). [`Reclaimed]: the
    previous lease was stale past the margin on two observations
    [grace] seconds apart (default {!Store.reclaim_grace}); we won the
    reclaim race and created a fresh one. [`Held]: someone else holds
    it, beat us to it, or the first stale observation was just
    recorded — poll again after the grace to confirm. Never blocks,
    never spins beyond [attempts] (default 3) vanished-file races. *)

val renew : t -> [ `Renewed | `Lost ]
(** Heartbeat: bump the lease mtime — but only after re-reading the
    file and confirming it still names us. [`Lost] means a reclaimer
    took the shard (we were presumed dead); stop working on it. A
    transient store error keeps the lease ([`Renewed]): the TTL margin
    absorbs one missed beat, and wrongly abandoning is the only unsafe
    direction for throughput. *)

val release : t -> unit
(** Remove the lease if it still names us; a reclaimed lease belongs
    to someone else and is left untouched. Never raises. *)

val holder : string -> (string * float) option
(** [(owner, observed_age_seconds)] of the lease at a path, if one
    exists; age is store-observed (coarse mtime and skew included). *)

val sweep_tombstones : dir:string -> ttl:float -> int
(** Delete reclaim tombstones ([*.stale.PID.N]) older than
    [ttl + margin] — leftovers of reclaimers that died between their
    rename and their delete. Idempotent and always safe (tombstones
    carry no authority); returns how many were swept. *)
