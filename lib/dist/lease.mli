(** Atomic lease files: shard ownership over a shared directory with no
    coordinator.

    The protocol leans on two filesystem guarantees: [O_CREAT|O_EXCL]
    open is atomic (of N racing claimants exactly one creates the file —
    the linearization point of every claim), and [rename] fails with
    ENOENT for all but one caller (reclaiming a stale lease renames it
    to a unique tombstone first, so exactly one reclaimer proceeds).

    Liveness is mtime: {!renew} bumps it as a heartbeat, and a lease
    older than the TTL is presumed dead and reclaimable. A wedged but
    alive holder can therefore lose its lease; {!renew} detects this
    ([`Lost]) by re-reading the owner, and the worker then abandons the
    shard. Double execution during the handover window is harmless:
    shard scans are deterministic and the table merge is monotone, so
    re-running a shard is idempotent (DESIGN.md, "Lease reclaim without
    consensus"). *)

type t = { path : string; owner : string }

val default_owner : unit -> string
(** [host:pid:nonce] — unique across the fleet for a lease's lifetime.
    The nonce guards against pid reuse through a crash/restart cycle. *)

val try_claim :
  ?attempts:int ->
  ttl:float ->
  owner:string ->
  string ->
  [ `Claimed of t | `Reclaimed of t | `Held ]
(** One claim attempt on a lease path. [`Claimed]: we created the lease.
    [`Reclaimed]: the previous lease was stale (older than [ttl]
    seconds); we won the reclaim race and created a fresh one.
    [`Held]: someone else holds it, or beat us to it. Never blocks,
    never spins beyond [attempts] (default 3) vanished-file races. *)

val renew : t -> [ `Renewed | `Lost ]
(** Heartbeat: bump the lease mtime — but only after re-reading the
    file and confirming it still names us. [`Lost] means a reclaimer
    took the shard (we were presumed dead); stop working on it. *)

val release : t -> unit
(** Remove the lease if it still names us; a reclaimed lease belongs
    to someone else and is left untouched. Never raises. *)

val holder : string -> (string * float) option
(** [(owner, age_seconds)] of the lease at a path, if one exists. *)
