(* Automatic quarantine repair: re-solve a quarantined shard's window
   from scratch — fresh caches, escalated budgets — and either clear
   the quarantine with a re-certified table or narrow it to the
   irreducible sub-windows that still refuse to solve.

   The repair loop is divide-and-conquer: solve the whole window; on
   failure split it in half and recurse, doubling the budget escalation
   with each level, until sub-windows either solve or reach a single
   pair that still fails (terminally poisoned — a genuine budget body,
   not transient damage). {!split_tiles} is the pure skeleton of that
   recursion, exposed so the re-tiling invariant (the leaves partition
   the original window exactly, whatever succeeds or fails) can be
   property-tested without a solver.

   Soundness is the usual argument: sub-window scans are deterministic
   and the blend is the monotone entry-by-entry merge, so a healed
   table contains exactly the verdicts a healthy worker would have
   certified. Re-certification uses the one sanctioned record overwrite
   ([Record.write ~replace:true]): the shard is Quarantined, nobody
   else is racing for it, and the stale record (if the quarantine came
   from a corrupt-table merge) must not survive. The quarantine file is
   deleted only after the new record is in place, so a crash mid-heal
   leaves the shard Quarantined and the heal idempotently re-runnable. *)

let m_healed = Obs.Metrics.counter "dist.shards_healed"
let m_still_poisoned = Obs.Metrics.counter "dist.shards_still_poisoned"

type config = {
  dir : string;
  budget : int option;
      (** base per-pair node budget; escalated 2x per split level
          ([None] = solver default at every level) *)
  jobs : int;
  store_depth : int;
  fsync : bool;
  deadline : Rt.Deadline.t;
}

let default_config ~dir =
  {
    dir;
    budget = None;
    jobs = 1;
    store_depth = 0;
    fsync = true;
    deadline = Rt.Deadline.none;
  }

type 'a leaf = { l_lo : int; l_hi : int; l_result : ('a, string) result }

(* The pure split skeleton: [solve ~depth lo hi] either solves a
   window or explains why not; a failed window of more than one pair
   splits at the midpoint and both halves recurse one level deeper.
   The returned leaves always tile [lo, hi) exactly, in order —
   the property the qcheck test pins down. *)
let split_tiles ~solve lo hi =
  let rec go ~depth lo hi acc =
    if lo >= hi then acc
    else
      match solve ~depth lo hi with
      | Ok _ as r -> { l_lo = lo; l_hi = hi; l_result = r } :: acc
      | Error _ as r when hi - lo <= 1 ->
          { l_lo = lo; l_hi = hi; l_result = r } :: acc
      | Error _ ->
          let mid = lo + ((hi - lo) / 2) in
          go ~depth:(depth + 1) mid hi (go ~depth:(depth + 1) lo mid acc)
  in
  List.rev (go ~depth:0 lo hi [])

type outcome = {
  entries : int;  (** entries in the re-certified table *)
  splits : int;  (** solved sub-windows (1 = whole window on first try) *)
}

exception Expired

(* quarantine files are written once; narrowing the reason rewrites
   it (delete + rewrite is fine: state stays Quarantined to every
   observer that matters, and the heal owns the shard here) *)
let narrow_quarantine ~cfg ~id detail =
  let st = Store.active () in
  ignore (st.Store.delete (Manifest.quarantine_path cfg.dir id));
  match
    Manifest.quarantine ~dir:cfg.dir ~owner:(Lease.default_owner ()) id
      (Printf.sprintf "irreducible after heal: %s" detail)
  with
  | Ok () -> ()
  | Error msg ->
      Obs.Log.err ~tag:"dist" "cannot rewrite quarantine for shard %d: %s" id
        msg

(* Re-solve one quarantined shard. [Ok (`Healed _)]: quarantine
   cleared, fresh table certified under a replaced record.
   [Ok (`Poisoned leaves)]: some irreducible sub-windows still fail;
   the quarantine is rewritten to name exactly them. [Error _] only on
   a heal-infrastructure failure (deadline, unwritable store) — the
   shard is left Quarantined and the heal can be re-run. *)
let heal ~cfg m (s : Manifest.shard) =
  let id = s.Manifest.id in
  let st = Store.active () in
  if not (st.Store.exists (Manifest.quarantine_path cfg.dir id)) then
    Error (Printf.sprintf "shard %d is not quarantined" id)
  else begin
    let reason =
      Option.value (Manifest.quarantine_reason cfg.dir id) ~default:"(unknown)"
    in
    Obs.Log.info ~tag:"dist" "healing shard %d [%d, %d): quarantined for %s"
      id s.Manifest.lo s.Manifest.hi reason;
    let started = st.Store.now () in
    let solve ~depth lo hi =
      if Rt.Deadline.expired cfg.deadline then raise Expired;
      let cache = Efgame.Cache.create () in
      let engine =
        if cfg.jobs > 1 then Efgame.Witness.Parallel (cache, cfg.jobs)
        else Efgame.Witness.Cached cache
      in
      (* escalate the budget with the split depth: the window that
         exhausted the original budget gets strictly more rope each
         time it is halved, so only a genuinely hard pair stays poisoned *)
      let budget =
        Option.map (fun b -> b * (1 lsl Stdlib.min depth 16)) cfg.budget
      in
      match
        Efgame.Witness.scan ?budget ~engine ~store_depth:cfg.store_depth
          ~range:(lo, hi)
          ~stop:(fun () -> Rt.Deadline.expired cfg.deadline)
          ~k:m.Manifest.k ~max_n:m.Manifest.max_n ()
      with
      | exception Expired -> raise Expired
      | exception e ->
          Error (Printf.sprintf "scan raised: %s" (Printexc.to_string e))
      | Efgame.Witness.Interrupted _, _ -> raise Expired
      | Efgame.Witness.Inconclusive (_, unknowns), _ ->
          Error
            (Printf.sprintf "budget exhausted on %d pair(s)"
               (List.length unknowns))
      | Efgame.Witness.Found (p, q), _ -> Ok (cache, Some (p, q))
      | Efgame.Witness.Exhausted _, _ -> Ok (cache, None)
    in
    match split_tiles ~solve s.Manifest.lo s.Manifest.hi with
    | exception Expired -> Error "heal deadline expired"
    | leaves -> (
        let poisoned =
          List.filter_map
            (fun l ->
              match l.l_result with
              | Error msg -> Some (l.l_lo, l.l_hi, msg)
              | Ok _ -> None)
            leaves
        in
        match poisoned with
        | _ :: _ ->
            (* narrow the quarantine to exactly the irreducible
               sub-windows — the healable remainder is re-solved for
               free next heal, and an operator reading the reason sees
               precisely which pairs are beyond the budget *)
            let detail =
              poisoned
              |> List.map (fun (lo, hi, msg) ->
                     Printf.sprintf "[%d,%d) %s" lo hi msg)
              |> String.concat "; "
            in
            narrow_quarantine ~cfg ~id detail;
            Obs.Metrics.incr m_still_poisoned;
            Obs.Log.warn ~tag:"dist"
              "shard %d still poisoned after heal: %d irreducible \
               sub-window(s): %s"
              id (List.length poisoned) detail;
            Ok (`Poisoned poisoned)
        | [] -> (
            (* every sub-window solved: blend the fresh caches and
               re-certify, exactly the worker's certification discipline *)
            let into = Efgame.Cache.create () in
            List.iter
              (fun l ->
                match l.l_result with
                | Ok (cache, _) -> Merge.blend ~into cache
                | Error _ -> ())
              leaves;
            let found =
              List.filter_map
                (fun l ->
                  match l.l_result with Ok (_, f) -> f | Error _ -> None)
                leaves
              |> List.sort (fun (p, q) (p', q') -> compare (q, p) (q', p'))
              |> function [] -> None | x :: _ -> Some x
            in
            let outcome =
              match found with
              | Some (p, q) -> Record.Found (p, q)
              | None -> Record.Exhausted
            in
            let table = Manifest.table_path cfg.dir id in
            let certify () =
              match Efgame.Persist.save ~fsync:cfg.fsync into table with
              | Error e ->
                  Error (Format.asprintf "save: %a" Efgame.Persist.pp_error e)
              | Ok written -> (
                  let check = Efgame.Cache.create () in
                  match Efgame.Persist.load check table with
                  | Error e ->
                      Error
                        (Format.asprintf "validation: %a"
                           Efgame.Persist.pp_error e)
                  | Ok r when r.Efgame.Persist.entries <> written ->
                      Error
                        (Printf.sprintf
                           "validation: %d entries on disk, %d written"
                           r.Efgame.Persist.entries written)
                  | Ok _ -> (
                      match Record.file_fnv table with
                      | Error msg -> Error ("checksum: " ^ msg)
                      | Ok fnv -> (
                          let wall_ns =
                            Int64.of_float
                              (Float.max 0. (st.Store.now () -. started)
                              *. 1e9)
                          in
                          let record =
                            {
                              Record.shard = id;
                              owner = Lease.default_owner ();
                              outcome;
                              entries = written;
                              table_fnv = fnv;
                              table = None;
                              wall_ns = Some wall_ns;
                            }
                          in
                          match Record.write ~replace:true ~dir:cfg.dir record with
                          | `Written -> Ok written
                          | `Lost _ -> Error "record: replace reported a race"
                          | `Error msg -> Error ("record: " ^ msg))))
            in
            match Rt.Backoff.retry certify with
            | Error msg -> Error msg
            | Ok written ->
                (* only now is the quarantine lifted: record first, so
                   a crash in between re-runs the heal instead of
                   resurrecting a shard with a stale record *)
                let del p = ignore (st.Store.delete p) in
                del (Manifest.quarantine_path cfg.dir id);
                del (Manifest.retries_path cfg.dir id);
                del (Manifest.spec_table_path cfg.dir id);
                del (Manifest.spec_lease_path cfg.dir id);
                Obs.Metrics.incr m_healed;
                Obs.Log.info ~tag:"dist"
                  "shard %d healed: %d entries re-certified in %d window(s)"
                  id written (List.length leaves);
                Ok (`Healed { entries = written; splits = List.length leaves })
            ))
  end

type fleet = {
  healed : int;
  still_poisoned : int;
  failed : int;  (** heal-infrastructure errors; shards left untouched *)
  per_shard :
    (int * [ `Healed of outcome | `Poisoned of (int * int * string) list | `Error of string ])
    list;
}

(* Heal every quarantined shard in the directory, in id order. Never
   raises; a shard whose heal errors (deadline included) is reported
   and left Quarantined for the next round. *)
let heal_all ~cfg =
  match Manifest.load ~dir:cfg.dir with
  | Error msg -> Error msg
  | Ok m ->
      let results =
        Array.to_list m.Manifest.shards
        |> List.filter_map (fun s ->
               match Manifest.state ~dir:cfg.dir ~ttl:infinity s with
               | Manifest.Quarantined -> (
                   match heal ~cfg m s with
                   | Ok (`Healed o) -> Some (s.Manifest.id, `Healed o)
                   | Ok (`Poisoned p) -> Some (s.Manifest.id, `Poisoned p)
                   | Error msg -> Some (s.Manifest.id, `Error msg))
               | _ -> None)
      in
      let count f = List.length (List.filter f results) in
      Ok
        {
          healed = count (function _, `Healed _ -> true | _ -> false);
          still_poisoned =
            count (function _, `Poisoned _ -> true | _ -> false);
          failed = count (function _, `Error _ -> true | _ -> false);
          per_shard = results;
        }
