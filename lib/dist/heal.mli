(** Automatic quarantine repair: re-solve a quarantined shard's window
    from scratch (fresh caches, budgets escalated 2x per split level)
    and either clear the quarantine with a re-certified table or narrow
    it to the irreducible sub-windows that still fail.

    Sound by the usual argument — sub-window scans are deterministic
    and the blend is the monotone merge, so a healed table holds
    exactly the verdicts a healthy worker would have certified.
    Re-certification is the one sanctioned use of
    [Record.write ~replace:true]; the quarantine file is deleted only
    {e after} the fresh record lands, so a crash mid-heal leaves the
    shard Quarantined and the heal idempotently re-runnable. *)

type config = {
  dir : string;
  budget : int option;
      (** base per-pair node budget; escalated 2x per split level
          ([None] = solver default at every level) *)
  jobs : int;
  store_depth : int;
  fsync : bool;
  deadline : Rt.Deadline.t;
}

val default_config : dir:string -> config
(** solver-default budget, 1 job, store depth 0, fsync on, no
    deadline. *)

type 'a leaf = { l_lo : int; l_hi : int; l_result : ('a, string) result }

val split_tiles :
  solve:(depth:int -> int -> int -> ('a, string) result) ->
  int ->
  int ->
  'a leaf list
(** The pure split-and-retry skeleton: solve the window; on failure
    split at the midpoint and recurse both halves one [depth] deeper,
    until sub-windows solve or reach a single pair that still fails.
    The leaves always tile the original window exactly, in order —
    whatever [solve] answers (the property the qcheck test pins
    down). *)

type outcome = {
  entries : int;  (** entries in the re-certified table *)
  splits : int;  (** solved sub-windows (1 = whole window on first try) *)
}

val heal :
  cfg:config ->
  Manifest.t ->
  Manifest.shard ->
  ( [ `Healed of outcome | `Poisoned of (int * int * string) list ],
    string )
  result
(** Heal one shard. [`Healed]: quarantine cleared, table re-certified
    under a replaced record, retry counter and speculative leftovers
    deleted. [`Poisoned]: the listed sub-windows are irreducible (one
    pair, still failing at escalated budget); the quarantine reason is
    rewritten to name exactly them. [Error]: the shard is not
    quarantined, the deadline expired, or the store refused the
    re-certification — the shard is left Quarantined and the heal can
    simply be re-run. *)

type fleet = {
  healed : int;
  still_poisoned : int;
  failed : int;  (** heal-infrastructure errors; shards left untouched *)
  per_shard :
    (int
    * [ `Healed of outcome
      | `Poisoned of (int * int * string) list
      | `Error of string ])
    list;
}

val heal_all : cfg:config -> (fleet, string) result
(** Heal every Quarantined shard in the directory, in id order. Never
    raises; [Error] only on an unreadable manifest. *)
