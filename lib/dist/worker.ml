(* The shard worker: claim → scan → persist → certify → release, in a
   loop, until every shard in the directory is terminal (Done or
   Quarantined) or the driver asks us to stop.

   Failure handling is layered:

   - Transient I/O failures inside one attempt (a failed save, a failed
     validation read, a failed record write) are retried in-lease with
     capped exponential backoff ({!Rt.Backoff.retry}), renewing the
     lease heartbeat before each retry so a slow disk doesn't cost us
     the shard.
   - A shard whose attempts are exhausted is *re-enqueued*: its partial
     outputs are deleted, its cross-worker retry counter is bumped, and
     its lease released, so any worker (including this one) can try it
     again from scratch.
   - A shard that keeps failing past [max_requeues], or whose scan came
     back Inconclusive (budget exhaustion — deterministic, retrying
     cannot help), is {e quarantined} with a reason and never merged.
   - A lease lost mid-scan (we wedged past the TTL and someone reclaimed
     us) abandons the shard: the reclaiming worker owns it now, and our
     half-finished table must not be certified. Double execution up to
     that point is harmless — shard scans are deterministic and the
     merge is monotone (see DESIGN.md).

   Speculative re-execution (DESIGN.md decision 10) rides on the same
   soundness argument: a worker that has nothing claimable but sees a
   fresh holder straggling far below the fleet's robust median rate
   claims the shard's *secondary* lease, re-solves the window into a
   separate [.spec.tbl], and races the straggler to the completion
   record. The record's exclusive create is the single winner point;
   the loser reads the winner's record back, checks the content hashes
   agree (deterministic scans make the duplicate byte-identical), and
   discards its own output. *)

let m_completed = Obs.Metrics.counter "dist.shards_completed"
let m_abandoned = Obs.Metrics.counter "dist.shards_abandoned"
let m_requeued = Obs.Metrics.counter "dist.shards_requeued"
let m_quarantined = Obs.Metrics.counter "dist.shards_quarantined"
let m_speculated = Obs.Metrics.counter "dist.shards_speculated"
let m_spec_wins = Obs.Metrics.counter "dist.speculation_wins"
let m_deduped = Obs.Metrics.counter "dist.records_deduped"

let fp_claim = Rt.Fault.point "dist.claim"
let fp_certify = Rt.Fault.point "dist.certify"

type config = {
  dir : string;
  ttl : float;  (** lease staleness threshold, seconds *)
  jobs : int;  (** solver domains per shard scan *)
  budget : int option;  (** per-pair node budget (solver default if None) *)
  attempts : int;  (** in-lease I/O attempts per shard (Rt.Backoff) *)
  max_requeues : int;  (** cross-worker retries before quarantine *)
  deadline : Rt.Deadline.t;
  fsync : bool;
  store_depth : int;
  heartbeat : float;  (** snapshot publish interval; <= 0 disables *)
  flight : string option;  (** dump the flight ring here on every tick *)
  speculate : bool;  (** re-execute straggler-held shards when idle *)
  throttle : float option;
      (** cap the scan rate at this many pairs/s — a chaos/soak hook
          for manufacturing stragglers, never set in production *)
}

let default_config ~dir =
  {
    dir;
    ttl = 30.;
    jobs = 1;
    budget = None;
    attempts = 3;
    max_requeues = 2;
    deadline = Rt.Deadline.none;
    fsync = true;
    store_depth = 0;
    heartbeat = 2.;
    flight = None;
    speculate = false;
    throttle = None;
  }

type summary = {
  completed : int;
  claimed : int;
  reclaimed : int;
  abandoned : int;  (** lease lost mid-scan; shard left to its new owner *)
  requeued : int;
  quarantined : int;
  pairs : int;  (** pair verdicts computed across all shard scans *)
  speculated : int;  (** speculative re-executions started *)
  spec_wins : int;  (** speculative records that landed first *)
  deduped : int;  (** own outputs discarded after losing a record race *)
}

let zero_summary =
  {
    completed = 0;
    claimed = 0;
    reclaimed = 0;
    abandoned = 0;
    requeued = 0;
    quarantined = 0;
    pairs = 0;
    speculated = 0;
    spec_wins = 0;
    deduped = 0;
  }

let remove_quiet path = ignore ((Store.active ()).Store.delete path)

(* One certification attempt: snapshot the shard cache to [table],
   re-read it strictly (exactly what the merge will do), and race the
   completion record into place. Any retryable failure is an [Error]
   for {!Rt.Backoff.retry}; losing the record race is a *success* of
   kind [`Superseded] — someone certified the shard first, and
   retrying could never turn that into a win. *)
let certify ~cfg ~owner ~hb ~shard ~cache ~outcome ~table ~table_name
    ~wall_ns () =
  match
    Rt.Fault.fire fp_certify;
    Efgame.Persist.save ~fsync:cfg.fsync cache table
  with
  | exception Rt.Fault.Injected site ->
      Atomic.incr hb.Heartbeat.faults;
      Error (Printf.sprintf "injected fault at %s" site)
  | Error e -> Error (Format.asprintf "save: %a" Efgame.Persist.pp_error e)
  | Ok written -> (
      let check = Efgame.Cache.create () in
      match Efgame.Persist.load check table with
      | Error e ->
          Error (Format.asprintf "validation: %a" Efgame.Persist.pp_error e)
      | Ok r when r.Efgame.Persist.entries <> written ->
          Error
            (Printf.sprintf "validation: %d entries on disk, %d written"
               r.Efgame.Persist.entries written)
      | Ok _ -> (
          match Record.file_fnv table with
          | Error msg -> Error ("checksum: " ^ msg)
          | Ok fnv -> (
              let record =
                {
                  Record.shard = shard.Manifest.id;
                  owner;
                  outcome;
                  entries = written;
                  table_fnv = fnv;
                  table = table_name;
                  wall_ns = Some wall_ns;
                }
              in
              match Record.write ~dir:cfg.dir record with
              | `Written -> Ok (`Certified written)
              | `Lost (Some w)
                when w.Record.owner = owner && w.Record.table_fnv = fnv ->
                  (* our own earlier create: a chaotic store reported a
                     real success as ambiguous, the retry saw Exists —
                     recognize it, same discipline as Lease claims *)
                  Ok (`Certified written)
              | `Lost winner -> Ok (`Superseded (winner, fnv))
              | `Error msg -> Error ("record: " ^ msg))))

(* Retried in-lease; each retry renews the heartbeat first so slow I/O
   can't cost us the lease while we back off. *)
let certify_with_retries ~cfg ~owner ~hb ~shard ~lease ~cache ~table
    ~table_name ~wall_ns outcome =
  Rt.Backoff.retry ~attempts:cfg.attempts
    ~on_retry:(fun ~attempt ~delay:_ ->
      Atomic.incr hb.Heartbeat.retries;
      if Obs.Events.enabled () then
        Obs.Events.record
          ~detail:
            (Printf.sprintf "certify shard %d attempt %d" shard.Manifest.id
               attempt)
          "retry";
      ignore (Lease.renew lease))
    (certify ~cfg ~owner ~hb ~shard ~cache ~outcome ~table ~table_name
       ~wall_ns)

(* A racer that lost the completion record discards its own table:
   deterministic scans mean the winner certified the same verdicts, so
   a hash mismatch is logged loudly (it would mean the determinism
   assumption broke), but the merge stays sound either way — it reads
   only the winner's certified file.

   The delete is gated on positively reading the winner's record and
   seeing that it names a different file. When the winner cannot be
   read (a transient store fault, or torn-record debris) the duplicate
   is kept: the winner may well have certified the very path we hold —
   a reclaimer certifies the same [shard-NNNN.tbl] a slow original
   holder writes — and deleting on a guess destroys a certified table.
   A stray uncertified table is harmless; the merge reads only files a
   record's checksum vouches for. *)
let discard_duplicate ~cfg ~hb id ~our_table ~our_fnv winner =
  Obs.Metrics.incr m_deduped;
  (match winner with
  | Some w when w.Record.table_fnv = our_fnv ->
      Obs.Log.info ~tag:"dist"
        "shard %d: certified first by %s with identical content %Lx; \
         discarding duplicate"
        id w.Record.owner our_fnv
  | Some w ->
      Obs.Log.err ~tag:"dist"
        "shard %d: duplicate execution hash %Lx differs from winning \
         record's %Lx — determinism violation? (merge unaffected: it \
         reads only the certified table)"
        id our_fnv w.Record.table_fnv
  | None ->
      Obs.Log.warn ~tag:"dist"
        "shard %d: lost the record race to an unreadable record; \
         keeping our table in case the winner certified it" id);
  (match winner with
  | Some w when Record.table_file ~dir:cfg.dir w <> our_table ->
      remove_quiet our_table
  | Some _ | None -> ());
  ignore hb

(* Scan one claimed shard's window. Returns the warmed cache on success
   so certification writes exactly what was computed.

   The heartbeat atomics are refreshed from the scheduler's tick
   callback (cumulative pairs, this shard's cache counters on top of
   the pre-shard base): the scan only ever stores into atomics here,
   and the telemetry thread turns them into a snapshot file at its own
   pace. [abort] is polled at the lease-renew cadence: a speculator
   passes "the shard's record exists", so a superseded speculation
   stops burning cycles within a third of a TTL. *)
let execute ~cfg ~stop ?(abort = fun () -> false) ~hb (lease : Lease.t)
    shard m =
  let open Manifest in
  let cache = Efgame.Cache.create () in
  let engine =
    if cfg.jobs > 1 then Efgame.Witness.Parallel (cache, cfg.jobs)
    else Efgame.Witness.Cached cache
  in
  let pairs_base = Atomic.get hb.Heartbeat.pairs in
  let hits_base = Atomic.get hb.Heartbeat.cache_hits in
  let misses_base = Atomic.get hb.Heartbeat.cache_misses in
  let cost_base = Atomic.get hb.Heartbeat.cost_done in
  let set_progress ~completed =
    Atomic.set hb.Heartbeat.pairs (pairs_base + completed);
    let cs = Efgame.Cache.stats cache in
    Atomic.set hb.Heartbeat.cache_hits (hits_base + cs.Efgame.Cache.hits);
    Atomic.set hb.Heartbeat.cache_misses (misses_base + cs.Efgame.Cache.misses);
    match m.model with
    | Cost.Uniform -> ()
    | model ->
        let c = Cost.window_cost model shard.lo (shard.lo + completed) in
        Atomic.set hb.Heartbeat.cost_done (cost_base + int_of_float c)
  in
  let st = Store.active () in
  let started = st.Store.now () in
  let lost = ref false in
  let aborted = ref false in
  let last_renew = ref started in
  let renew_if_due () =
    let now = st.Store.now () in
    if now -. !last_renew > cfg.ttl /. 3. then begin
      (match Lease.renew lease with `Renewed -> () | `Lost -> lost := true);
      if abort () then aborted := true;
      last_renew := now
    end
  in
  let on_tick ~completed =
    set_progress ~completed;
    (* soak-only rate cap: sleep off the whole surplus, in small slices
       so the lease stays renewed and a landing record (a speculator
       rescued this shard under us) aborts the crawl within a renewal
       interval instead of at the end of the nap *)
    (match cfg.throttle with
    | Some rate when rate > 0. ->
        let ideal = started +. (float_of_int completed /. rate) in
        let rec pace () =
          let now = st.Store.now () in
          if
            now < ideal && (not !lost) && (not !aborted) && (not (stop ()))
            && Rt.Signal.pending () = None
            && not (Rt.Deadline.expired cfg.deadline)
          then begin
            Unix.sleepf (Float.min (ideal -. now) 0.2);
            renew_if_due ();
            pace ()
          end
        in
        pace ()
    | _ -> ());
    renew_if_due ()
  in
  let stop () =
    !lost || !aborted || stop () || Rt.Deadline.expired cfg.deadline
    || Rt.Signal.pending () <> None
  in
  match
    Efgame.Witness.scan ?budget:cfg.budget ~engine ~store_depth:cfg.store_depth
      ~range:(shard.lo, shard.hi) ~on_tick ~stop ~k:m.k ~max_n:m.max_n ()
  with
  | exception e ->
      (* a crashed scan (an injected scheduler fault that escaped
         supervision, or anything else) requeues the shard instead of
         crashing the worker. Roll the progress atomics back to the
         pre-shard base: the summary credits a raised scan with zero
         pairs, and the published heartbeat must agree with it. *)
      set_progress ~completed:0;
      `Failed (Printf.sprintf "scan raised: %s" (Printexc.to_string e), 0)
  | outcome, stats -> (
      let pairs = stats.Efgame.Witness.pairs in
      set_progress ~completed:pairs;
      let wall_ns =
        Int64.of_float (Float.max 0. (st.Store.now () -. started) *. 1e9)
      in
      if !lost then `Lost_lease pairs
      else
        match outcome with
        | Efgame.Witness.Interrupted _ ->
            if !aborted then `Superseded pairs else `Stopped pairs
        | Efgame.Witness.Inconclusive (_, unknowns) ->
            `Undecidable
              ( Printf.sprintf "budget exhausted on %d pair(s)"
                  (List.length unknowns),
                pairs )
        | Efgame.Witness.Found (p, q) ->
            `Scanned (cache, Record.Found (p, q), pairs, wall_ns)
        | Efgame.Witness.Exhausted _ ->
            `Scanned (cache, Record.Exhausted, pairs, wall_ns))

let quarantine_shard ~cfg ~owner id reason =
  Obs.Metrics.incr m_quarantined;
  if Obs.Events.enabled () then
    Obs.Events.record
      ~detail:(Printf.sprintf "shard %d: %s" id reason)
      "quarantine";
  Obs.Log.warn ~tag:"dist" "shard %d quarantined: %s" id reason;
  match Manifest.quarantine ~dir:cfg.dir ~owner id reason with
  | Ok () -> ()
  | Error msg -> Obs.Log.err ~tag:"dist" "cannot quarantine shard %d: %s" id msg

(* Failure paths land here: count a cross-worker retry and either
   re-enqueue or quarantine — unless a completion record already
   exists, in which case the shard is Done (a speculator won it while
   we were failing) and there is nothing to repair: a certified record
   must never be deleted on a loser's failure path.

   Nothing is deleted here, deliberately. A concurrent certifier can
   land its record between any existence check and a delete, so
   removing the table or record path on a failure path is a
   lost-verdict race waiting to happen. Stale partial tables are
   overwritten by the next certifier's save (which rotates them to
   .bak), and torn-record debris is the merge's problem: an unreadable
   record quarantines the shard at merge time and {!Heal} re-certifies
   it under [replace:true]. *)
let requeue_or_quarantine ~cfg ~owner (lease : Lease.t) id reason =
  match Record.read ~dir:cfg.dir id with
  | Ok w ->
      Obs.Log.info ~tag:"dist"
        "shard %d: already certified by %s; dropping failed attempt (%s)" id
        w.Record.owner reason;
      Lease.release lease;
      `Superseded
  | Error _ ->
      let tries = Manifest.bump_retries cfg.dir id in
      if tries > cfg.max_requeues then begin
        quarantine_shard ~cfg ~owner id
          (Printf.sprintf "%s (after %d re-enqueues)" reason (tries - 1));
        Lease.release lease;
        `Quarantined
      end
      else begin
        Obs.Metrics.incr m_requeued;
        if Obs.Events.enabled () then
          Obs.Events.record
            ~detail:(Printf.sprintf "shard %d attempt %d: %s" id tries reason)
            "requeue";
        Obs.Log.warn ~tag:"dist" "shard %d re-enqueued (attempt %d/%d): %s" id
          tries cfg.max_requeues reason;
        Lease.release lease;
        `Requeued
      end

(* Drive one freshly claimed shard to a terminal local outcome.
   Returns [`Stop] only when the driver's stop condition fired. *)
let work_one ~cfg ~stop ~owner ~hb lease ~how shard m summary =
  let id = shard.Manifest.id in
  (match how with
  | `Claimed ->
      Obs.Log.info ~tag:"dist" "claimed shard %d [%d, %d)" id
        shard.Manifest.lo shard.Manifest.hi
  | `Reclaimed ->
      Obs.Log.info ~tag:"dist" "reclaimed stale shard %d [%d, %d)" id
        shard.Manifest.lo shard.Manifest.hi);
  let summary =
    {
      summary with
      claimed = summary.claimed + 1;
      reclaimed =
        (summary.reclaimed + match how with `Reclaimed -> 1 | `Claimed -> 0);
    }
  in
  Atomic.incr hb.Heartbeat.claimed;
  (match how with
  | `Reclaimed -> Atomic.incr hb.Heartbeat.reclaimed
  | `Claimed -> ());
  Atomic.set hb.Heartbeat.current_shard id;
  let finish r =
    Atomic.set hb.Heartbeat.current_shard (-1);
    r
  in
  (* abort the primary scan too when a record lands: a speculator may
     finish the shard under us, and every pair past that point is
     wasted heat *)
  let abort () = (Store.active ()).Store.exists (Manifest.done_path cfg.dir id) in
  finish
  @@
  match execute ~cfg ~stop ~abort ~hb lease shard m with
  | `Lost_lease pairs ->
      Obs.Metrics.incr m_abandoned;
      Atomic.incr hb.Heartbeat.abandoned;
      if Obs.Events.enabled () then
        Obs.Events.record ~detail:(Printf.sprintf "shard %d" id) "abandon";
      Obs.Log.warn ~tag:"dist" "lease on shard %d lost mid-scan; abandoning" id;
      ( `Continue,
        {
          summary with
          abandoned = summary.abandoned + 1;
          pairs = summary.pairs + pairs;
        } )
  | `Superseded pairs ->
      (* someone certified the shard while we were scanning it — a
         speculator, or a reclaimer that beat us after a lease blip.
         We never saved a table (that happens at certify), so the only
         file at our table path is a previous attempt's leftover or
         the winner's own certification: delete it only when the
         winner's record positively names a different file *)
      Obs.Metrics.incr m_deduped;
      Obs.Log.info ~tag:"dist"
        "shard %d certified under us mid-scan; dropping our run" id;
      (match Record.read ~dir:cfg.dir id with
      | Ok w
        when Record.table_file ~dir:cfg.dir w
             <> Manifest.table_path cfg.dir id ->
          remove_quiet (Manifest.table_path cfg.dir id)
      | Ok _ | Error _ -> ());
      Lease.release lease;
      ( `Continue,
        {
          summary with
          deduped = summary.deduped + 1;
          pairs = summary.pairs + pairs;
        } )
  | `Stopped pairs ->
      Lease.release lease;
      (`Stop, { summary with pairs = summary.pairs + pairs })
  | `Undecidable (reason, pairs) ->
      quarantine_shard ~cfg ~owner id reason;
      Atomic.incr hb.Heartbeat.quarantined;
      Lease.release lease;
      ( `Continue,
        {
          summary with
          quarantined = summary.quarantined + 1;
          pairs = summary.pairs + pairs;
        } )
  | `Failed (reason, pairs) -> (
      let summary = { summary with pairs = summary.pairs + pairs } in
      match requeue_or_quarantine ~cfg ~owner lease id reason with
      | `Superseded -> (`Continue, { summary with deduped = summary.deduped + 1 })
      | `Quarantined ->
          Atomic.incr hb.Heartbeat.quarantined;
          (`Continue, { summary with quarantined = summary.quarantined + 1 })
      | `Requeued ->
          Atomic.incr hb.Heartbeat.requeued;
          (`Continue, { summary with requeued = summary.requeued + 1 }))
  | `Scanned (cache, outcome, pairs, wall_ns) -> (
      let summary = { summary with pairs = summary.pairs + pairs } in
      let table = Manifest.table_path cfg.dir id in
      match
        certify_with_retries ~cfg ~owner ~hb ~shard ~lease ~cache ~table
          ~table_name:None ~wall_ns outcome
      with
      | Ok (`Certified written) ->
          Obs.Metrics.incr m_completed;
          Atomic.incr hb.Heartbeat.completed;
          Atomic.set hb.Heartbeat.last_checkpoint_s
            (int_of_float ((Store.active ()).Store.now ()));
          Obs.Log.info ~tag:"dist" "shard %d done: %s, %d entries" id
            (match outcome with
            | Record.Exhausted -> "exhausted"
            | Record.Found (p, q) -> Printf.sprintf "found (%d,%d)" p q)
            written;
          Lease.release lease;
          (`Continue, { summary with completed = summary.completed + 1 })
      | Ok (`Superseded (winner, fnv)) ->
          discard_duplicate ~cfg ~hb id ~our_table:table ~our_fnv:fnv winner;
          Lease.release lease;
          (`Continue, { summary with deduped = summary.deduped + 1 })
      | Error reason -> (
          match requeue_or_quarantine ~cfg ~owner lease id reason with
          | `Superseded ->
              (`Continue, { summary with deduped = summary.deduped + 1 })
          | `Quarantined ->
              Atomic.incr hb.Heartbeat.quarantined;
              (`Continue, { summary with quarantined = summary.quarantined + 1 })
          | `Requeued ->
              Atomic.incr hb.Heartbeat.requeued;
              (`Continue, { summary with requeued = summary.requeued + 1 })))

(* ----------------------------------------------- speculation (idle) *)

(* Run one speculative re-execution of a straggler-held shard under its
   secondary lease. Strictly best-effort: any failure just releases the
   spec lease and cleans up — requeue/quarantine decisions belong to
   the primary path, and a speculator must never be able to poison a
   shard its healthy-but-slow holder would have finished. *)
let run_speculation ~cfg ~stop ~owner ~hb lease (s : Manifest.shard) m summary
    =
  let id = s.Manifest.id in
  Obs.Metrics.incr m_speculated;
  Atomic.incr hb.Heartbeat.speculated;
  if Obs.Events.enabled () then
    Obs.Events.record ~detail:(Printf.sprintf "shard %d" id) "speculate";
  Obs.Log.info ~tag:"dist"
    "speculatively re-executing straggler-held shard %d [%d, %d)" id
    s.Manifest.lo s.Manifest.hi;
  let summary = { summary with speculated = summary.speculated + 1 } in
  Atomic.set hb.Heartbeat.current_shard id;
  let finish r =
    Atomic.set hb.Heartbeat.current_shard (-1);
    r
  in
  let spec_table = Manifest.spec_table_path cfg.dir id in
  let abort () =
    let st = Store.active () in
    st.Store.exists (Manifest.done_path cfg.dir id)
    || st.Store.exists (Manifest.quarantine_path cfg.dir id)
  in
  finish
  @@
  match
    (* the speculator must not inherit the soak throttle: it exists to
       outrun the straggler *)
    execute ~cfg:{ cfg with throttle = None } ~stop ~abort ~hb lease s m
  with
  | `Lost_lease pairs ->
      remove_quiet spec_table;
      (`Continue, { summary with pairs = summary.pairs + pairs })
  | `Superseded pairs ->
      (* the primary (or a heal) finished while we ran — mission
         accomplished, just not by us *)
      remove_quiet spec_table;
      Lease.release lease;
      (`Continue, { summary with pairs = summary.pairs + pairs })
  | `Stopped pairs ->
      remove_quiet spec_table;
      Lease.release lease;
      (`Stop, { summary with pairs = summary.pairs + pairs })
  | `Undecidable (reason, pairs) | `Failed (reason, pairs) ->
      Obs.Log.info ~tag:"dist" "speculation on shard %d dropped: %s" id reason;
      remove_quiet spec_table;
      Lease.release lease;
      (`Continue, { summary with pairs = summary.pairs + pairs })
  | `Scanned (cache, outcome, pairs, wall_ns) -> (
      let summary = { summary with pairs = summary.pairs + pairs } in
      match
        certify_with_retries ~cfg ~owner ~hb ~shard:s ~lease ~cache
          ~table:spec_table
          ~table_name:(Some (Manifest.spec_table_name id))
          ~wall_ns outcome
      with
      | Ok (`Certified written) ->
          Obs.Metrics.incr m_completed;
          Obs.Metrics.incr m_spec_wins;
          Atomic.incr hb.Heartbeat.completed;
          Atomic.incr hb.Heartbeat.spec_wins;
          Atomic.set hb.Heartbeat.last_checkpoint_s
            (int_of_float ((Store.active ()).Store.now ()));
          Obs.Log.info ~tag:"dist"
            "speculation won shard %d: %d entries certified ahead of the \
             straggler" id written;
          Lease.release lease;
          ( `Continue,
            {
              summary with
              completed = summary.completed + 1;
              spec_wins = summary.spec_wins + 1;
            } )
      | Ok (`Superseded (winner, fnv)) ->
          discard_duplicate ~cfg ~hb id ~our_table:spec_table ~our_fnv:fnv
            winner;
          Lease.release lease;
          (`Continue, { summary with deduped = summary.deduped + 1 })
      | Error reason ->
          Obs.Log.info ~tag:"dist" "speculation on shard %d dropped: %s" id
            reason;
          remove_quiet spec_table;
          Lease.release lease;
          (`Continue, summary))

(* Pick at most one straggler-held shard and speculate on it. The
   candidate set comes from {!Top.aggregate} over the live heartbeats —
   a shard qualifies only if it is Leased *fresh* (a stale lease is
   reclaimed through the normal path, no speculation needed), held by
   someone else, and its holder's progress rate is a robust-median
   outlier. *)
let speculate_one ~cfg ~stop ~owner ~hb m summary =
  let st = Store.active () in
  let observed, _ = Heartbeat.list ~dir:cfg.dir in
  let states =
    Array.to_list
      (Array.map
         (fun s -> (s, Manifest.state ~dir:cfg.dir ~ttl:cfg.ttl s))
         m.Manifest.shards)
  in
  let t =
    Top.aggregate ~now:(st.Store.now ()) ~model:m.Manifest.model ~states
      observed
  in
  let candidate id =
    match List.find_opt (fun (s, _) -> s.Manifest.id = id) states with
    | Some (s, Manifest.Leased) -> (
        match Lease.holder (Manifest.lease_path cfg.dir id) with
        | Some (holder, _) when holder <> owner -> Some s
        | _ -> None)
    | _ -> None
  in
  let rec try_ids = function
    | [] -> (`Continue, summary, false)
    | id :: rest -> (
        match candidate id with
        | None -> try_ids rest
        | Some s -> (
            match
              Lease.try_claim ~ttl:cfg.ttl ~owner
                (Manifest.spec_lease_path cfg.dir id)
            with
            | `Held -> try_ids rest
            | `Claimed lease | `Reclaimed lease ->
                let action, summary =
                  run_speculation ~cfg ~stop ~owner ~hb lease s m summary
                in
                (action, summary, true)))
  in
  let ids =
    match t.Top.stragglers with
    | _ :: _ as ids -> ids
    | [] when t.Top.shards_pending = 0 ->
        (* Drain-tail backup: the robust cut needs at least three
           progressing holders, but at the tail there may be exactly
           one — the straggler. With nothing left to claim, back up
           {e any} fresh shard held by someone else (the classic
           MapReduce tail speculation). Sound either way (decision
           10), and the secondary lease bounds the waste to one
           duplicate scan per tail window. *)
        List.filter_map
          (fun (r : Top.worker_row) ->
            if r.Top.fresh && r.Top.hb.Heartbeat.v_owner <> owner then
              r.Top.hb.Heartbeat.v_current_shard
            else None)
          t.Top.workers
        |> List.sort_uniq compare
    | [] -> []
  in
  try_ids ids

(* Elastic join: a worker arriving in an already-crowded fleet (more
   fresh heartbeats than pending shards) staggers its first claim sweep
   by a jittered beat instead of piling onto the contention. Purely a
   throughput courtesy — claims stay safe at any arrival rate. *)
let join_stagger ~cfg ~owner =
  let st = Store.active () in
  let observed, _ = Heartbeat.list ~dir:cfg.dir in
  let now = st.Store.now () in
  let fresh =
    List.length
      (List.filter
         (fun (o : Heartbeat.observed) ->
           let age =
             match o.Heartbeat.ob_mtime with
             | Some m -> now -. m
             | None -> now -. o.Heartbeat.ob_view.Heartbeat.v_now
           in
           age <= Top.default_stale_after)
         observed)
  in
  match Manifest.load ~dir:cfg.dir with
  | Error _ -> ()
  | Ok m ->
      let pending =
        Array.fold_left
          (fun acc s ->
            match Manifest.state ~dir:cfg.dir ~ttl:cfg.ttl s with
            | Manifest.Pending -> acc + 1
            | _ -> acc)
          0 m.Manifest.shards
      in
      if fresh > pending && pending >= 0 then begin
        let cap = Float.min (cfg.ttl /. 2.) 2.0 in
        let j =
          Rt.Backoff.stream
            ~seed:(Hashtbl.hash owner land 0x3fffffff)
            ~base_s:0.05 ~max_s:cap ()
        in
        let d = Float.min cap (Rt.Backoff.next j *. float_of_int fresh) in
        Obs.Log.info ~tag:"dist"
          "fleet crowded (%d fresh workers, %d pending shards); staggering \
           join by %.2fs" fresh pending d;
        Unix.sleepf d
      end

let run ?(stop = fun () -> false) cfg =
  (* the manifest read itself must survive a transient store fault:
     losing the whole worker to one EIO blip defeats the fleet *)
  match
    Rt.Backoff.retry ~attempts:4 ~base_s:0.05 ~max_s:0.5 (fun () ->
        Manifest.load ~dir:cfg.dir)
  with
  | Error msg -> Error msg
  | Ok m ->
      let owner = Lease.default_owner () in
      let hb = Heartbeat.make_stats ~owner in
      (* Live advertisement: the tick thread owns all heartbeat I/O (and
         the flight dump, so a SIGKILL loses at most one tick's worth of
         post-mortem). The loop below only ever stores into [hb]'s
         atomics. *)
      let publish ~seq =
        if cfg.heartbeat > 0. then
          Heartbeat.publish ~dir:cfg.dir (Heartbeat.view_of_stats ~seq hb);
        match cfg.flight with
        | Some path -> Obs.Events.dump ~path
        | None -> ()
      in
      let ticker =
        if cfg.heartbeat > 0. || cfg.flight <> None then
          let interval = if cfg.heartbeat > 0. then cfg.heartbeat else 2.0 in
          Some (Obs.Telemetry.ticker ~interval publish)
        else None
      in
      join_stagger ~cfg ~owner;
      let n = Array.length m.Manifest.shards in
      (* start the sweep at an owner-dependent offset so N workers
         launched together don't all stampede shard 0 *)
      let offset = Hashtbl.hash owner mod n in
      let poll = Float.min (cfg.ttl /. 4.) 0.25 in
      (* idle-wait pacing: decorrelated jitter (seeded by owner, so the
         fleet decorrelates but each worker replays deterministically),
         reset to the base after every successful claim *)
      let pace =
        Rt.Backoff.stream
          ~seed:(Hashtbl.hash owner land 0x3fffffff)
          ~base_s:(Float.min poll 0.05) ~max_s:poll ()
      in
      let should_stop () =
        stop () || Rt.Deadline.expired cfg.deadline
        || Rt.Signal.pending () <> None
      in
      let rec loop summary =
        if should_stop () then Ok summary
        else begin
          let claimable = ref [] in
          let busy = ref false in
          for i = 0 to n - 1 do
            let s = m.Manifest.shards.((i + offset) mod n) in
            match Manifest.state ~dir:cfg.dir ~ttl:cfg.ttl s with
            | Manifest.Pending -> claimable := s :: !claimable
            | Manifest.Leased -> busy := true
            | Manifest.Done | Manifest.Quarantined -> ()
          done;
          match List.rev !claimable with
          | [] ->
              if not !busy then Ok summary (* every shard is terminal *)
              else begin
                (* someone else holds the remaining work; sweep dead
                   reclaimers' tombstones, then either speculate on a
                   straggler or wait for the holders to finish or go
                   stale *)
                ignore (Lease.sweep_tombstones ~dir:cfg.dir ~ttl:cfg.ttl);
                if cfg.speculate then begin
                  match speculate_one ~cfg ~stop ~owner ~hb m summary with
                  | `Stop, summary, _ -> Ok summary
                  | `Continue, summary, progressed ->
                      if not progressed then
                        Unix.sleepf (Rt.Backoff.next pace);
                      loop summary
                end
                else begin
                  Unix.sleepf (Rt.Backoff.next pace);
                  loop summary
                end
              end
          | candidates -> (
              (* claim the first shard that will have us *)
              let rec claim = function
                | [] -> `None
                | s :: rest -> (
                    match
                      Rt.Fault.fire fp_claim;
                      Lease.try_claim ~ttl:cfg.ttl ~owner
                        (Manifest.lease_path cfg.dir s.Manifest.id)
                    with
                    | exception Rt.Fault.Injected _ ->
                        Atomic.incr hb.Heartbeat.faults;
                        claim rest
                    | `Held -> claim rest
                    | `Claimed lease -> `Go (lease, `Claimed, s)
                    | `Reclaimed lease -> `Go (lease, `Reclaimed, s))
              in
              match claim candidates with
              | `None ->
                  (* all candidates were claimed under us: back off a
                     jittered beat and rescan *)
                  Unix.sleepf (Rt.Backoff.next pace);
                  loop summary
              | `Go (lease, how, s) ->
                  Rt.Backoff.reset pace;
                  if
                    (* the shard may have been finished by a stale
                       holder between our state snapshot and the claim *)
                    (Store.active ()).Store.exists
                      (Manifest.done_path cfg.dir s.Manifest.id)
                    || (Store.active ()).Store.exists
                         (Manifest.quarantine_path cfg.dir s.Manifest.id)
                  then begin
                    Lease.release lease;
                    loop summary
                  end
                  else begin
                    match
                      work_one ~cfg ~stop ~owner ~hb lease ~how s m summary
                    with
                    | `Stop, summary -> Ok summary
                    | `Continue, summary -> loop summary
                  end)
        end
      in
      (* the final heartbeat publishes synchronously on the way out
         (Telemetry.stop ticks once more after the join), so the last
         snapshot on disk agrees with the summary we return *)
      Fun.protect
        ~finally:(fun () -> Option.iter Obs.Telemetry.stop ticker)
        (fun () -> loop zero_summary)
