(* The shard worker: claim → scan → persist → certify → release, in a
   loop, until every shard in the directory is terminal (Done or
   Quarantined) or the driver asks us to stop.

   Failure handling is layered:

   - Transient I/O failures inside one attempt (a failed save, a failed
     validation read, a failed record write) are retried in-lease with
     capped exponential backoff ({!Rt.Backoff.retry}), renewing the
     lease heartbeat before each retry so a slow disk doesn't cost us
     the shard.
   - A shard whose attempts are exhausted is *re-enqueued*: its partial
     outputs are deleted, its cross-worker retry counter is bumped, and
     its lease released, so any worker (including this one) can try it
     again from scratch.
   - A shard that keeps failing past [max_requeues], or whose scan came
     back Inconclusive (budget exhaustion — deterministic, retrying
     cannot help), is {e quarantined} with a reason and never merged.
   - A lease lost mid-scan (we wedged past the TTL and someone reclaimed
     us) abandons the shard: the reclaiming worker owns it now, and our
     half-finished table must not be certified. Double execution up to
     that point is harmless — shard scans are deterministic and the
     merge is monotone (see DESIGN.md). *)

let m_completed = Obs.Metrics.counter "dist.shards_completed"
let m_abandoned = Obs.Metrics.counter "dist.shards_abandoned"
let m_requeued = Obs.Metrics.counter "dist.shards_requeued"
let m_quarantined = Obs.Metrics.counter "dist.shards_quarantined"

let fp_claim = Rt.Fault.point "dist.claim"
let fp_certify = Rt.Fault.point "dist.certify"

type config = {
  dir : string;
  ttl : float;  (** lease staleness threshold, seconds *)
  jobs : int;  (** solver domains per shard scan *)
  budget : int option;  (** per-pair node budget (solver default if None) *)
  attempts : int;  (** in-lease I/O attempts per shard (Rt.Backoff) *)
  max_requeues : int;  (** cross-worker retries before quarantine *)
  deadline : Rt.Deadline.t;
  fsync : bool;
  store_depth : int;
  heartbeat : float;  (** snapshot publish interval; <= 0 disables *)
  flight : string option;  (** dump the flight ring here on every tick *)
}

let default_config ~dir =
  {
    dir;
    ttl = 30.;
    jobs = 1;
    budget = None;
    attempts = 3;
    max_requeues = 2;
    deadline = Rt.Deadline.none;
    fsync = true;
    store_depth = 0;
    heartbeat = 2.;
    flight = None;
  }

type summary = {
  completed : int;
  claimed : int;
  reclaimed : int;
  abandoned : int;  (** lease lost mid-scan; shard left to its new owner *)
  requeued : int;
  quarantined : int;
  pairs : int;  (** pair verdicts computed across all shard scans *)
}

let zero_summary =
  {
    completed = 0;
    claimed = 0;
    reclaimed = 0;
    abandoned = 0;
    requeued = 0;
    quarantined = 0;
    pairs = 0;
  }

let remove_quiet path = ignore ((Store.active ()).Store.delete path)

(* One certification attempt: snapshot the shard cache, re-read it
   strictly (exactly what the merge will do), and rename the completion
   record into place. Any failure is an [Error] for {!Rt.Backoff.retry}. *)
let certify ~cfg ~owner ~hb ~shard ~cache ~outcome () =
  let table = Manifest.table_path cfg.dir shard.Manifest.id in
  match
    Rt.Fault.fire fp_certify;
    Efgame.Persist.save ~fsync:cfg.fsync cache table
  with
  | exception Rt.Fault.Injected site ->
      Atomic.incr hb.Heartbeat.faults;
      Error (Printf.sprintf "injected fault at %s" site)
  | Error e -> Error (Format.asprintf "save: %a" Efgame.Persist.pp_error e)
  | Ok written -> (
      let check = Efgame.Cache.create () in
      match Efgame.Persist.load check table with
      | Error e ->
          Error (Format.asprintf "validation: %a" Efgame.Persist.pp_error e)
      | Ok r when r.Efgame.Persist.entries <> written ->
          Error
            (Printf.sprintf "validation: %d entries on disk, %d written"
               r.Efgame.Persist.entries written)
      | Ok _ -> (
          match Record.file_fnv table with
          | Error msg -> Error ("checksum: " ^ msg)
          | Ok fnv -> (
              let record =
                {
                  Record.shard = shard.Manifest.id;
                  owner;
                  outcome;
                  entries = written;
                  table_fnv = fnv;
                }
              in
              match Record.write ~dir:cfg.dir record with
              | Ok () -> Ok written
              | Error msg -> Error ("record: " ^ msg))))

(* Retried in-lease; each retry renews the heartbeat first so slow I/O
   can't cost us the lease while we back off. *)
let certify_with_retries ~cfg ~owner ~hb ~shard ~lease ~cache outcome =
  Rt.Backoff.retry ~attempts:cfg.attempts
    ~on_retry:(fun ~attempt ~delay:_ ->
      Atomic.incr hb.Heartbeat.retries;
      if Obs.Events.enabled () then
        Obs.Events.record
          ~detail:
            (Printf.sprintf "certify shard %d attempt %d" shard.Manifest.id
               attempt)
          "retry";
      ignore (Lease.renew lease))
    (certify ~cfg ~owner ~hb ~shard ~cache ~outcome)

(* Scan one claimed shard's window. Returns the warmed cache on success
   so certification writes exactly what was computed.

   The heartbeat atomics are refreshed from the scheduler's tick
   callback (cumulative pairs, this shard's cache counters on top of
   the pre-shard base): the scan only ever stores into atomics here,
   and the telemetry thread turns them into a snapshot file at its own
   pace. *)
let execute ~cfg ~stop ~hb (lease : Lease.t) shard m =
  let open Manifest in
  let cache = Efgame.Cache.create () in
  let engine =
    if cfg.jobs > 1 then Efgame.Witness.Parallel (cache, cfg.jobs)
    else Efgame.Witness.Cached cache
  in
  let pairs_base = Atomic.get hb.Heartbeat.pairs in
  let hits_base = Atomic.get hb.Heartbeat.cache_hits in
  let misses_base = Atomic.get hb.Heartbeat.cache_misses in
  let set_progress ~completed =
    Atomic.set hb.Heartbeat.pairs (pairs_base + completed);
    let cs = Efgame.Cache.stats cache in
    Atomic.set hb.Heartbeat.cache_hits (hits_base + cs.Efgame.Cache.hits);
    Atomic.set hb.Heartbeat.cache_misses (misses_base + cs.Efgame.Cache.misses)
  in
  let st = Store.active () in
  let lost = ref false in
  let last_renew = ref (st.Store.now ()) in
  let on_tick ~completed =
    set_progress ~completed;
    let now = st.Store.now () in
    if now -. !last_renew > cfg.ttl /. 3. then begin
      (match Lease.renew lease with `Renewed -> () | `Lost -> lost := true);
      last_renew := now
    end
  in
  let stop () =
    !lost || stop () || Rt.Deadline.expired cfg.deadline
    || Rt.Signal.pending () <> None
  in
  match
    Efgame.Witness.scan ?budget:cfg.budget ~engine ~store_depth:cfg.store_depth
      ~range:(shard.lo, shard.hi) ~on_tick ~stop ~k:m.k ~max_n:m.max_n ()
  with
  | exception e ->
      (* a crashed scan (an injected scheduler fault that escaped
         supervision, or anything else) requeues the shard instead of
         crashing the worker. Roll the progress atomics back to the
         pre-shard base: the summary credits a raised scan with zero
         pairs, and the published heartbeat must agree with it. *)
      set_progress ~completed:0;
      `Failed (Printf.sprintf "scan raised: %s" (Printexc.to_string e), 0)
  | outcome, stats -> (
      let pairs = stats.Efgame.Witness.pairs in
      set_progress ~completed:pairs;
      if !lost then `Lost_lease pairs
      else
        match outcome with
        | Efgame.Witness.Interrupted _ -> `Stopped pairs
        | Efgame.Witness.Inconclusive (_, unknowns) ->
            `Undecidable
              ( Printf.sprintf "budget exhausted on %d pair(s)"
                  (List.length unknowns),
                pairs )
        | Efgame.Witness.Found (p, q) ->
            `Scanned (cache, Record.Found (p, q), pairs)
        | Efgame.Witness.Exhausted _ -> `Scanned (cache, Record.Exhausted, pairs))

let quarantine_shard ~cfg ~owner id reason =
  Obs.Metrics.incr m_quarantined;
  if Obs.Events.enabled () then
    Obs.Events.record
      ~detail:(Printf.sprintf "shard %d: %s" id reason)
      "quarantine";
  Obs.Log.warn ~tag:"dist" "shard %d quarantined: %s" id reason;
  match Manifest.quarantine ~dir:cfg.dir ~owner id reason with
  | Ok () -> ()
  | Error msg -> Obs.Log.err ~tag:"dist" "cannot quarantine shard %d: %s" id msg

(* Failure paths land here: drop partial outputs, count a cross-worker
   retry, and either re-enqueue or quarantine. *)
let requeue_or_quarantine ~cfg ~owner (lease : Lease.t) id reason =
  remove_quiet (Manifest.table_path cfg.dir id);
  remove_quiet (Manifest.done_path cfg.dir id);
  let tries = Manifest.bump_retries cfg.dir id in
  if tries > cfg.max_requeues then begin
    quarantine_shard ~cfg ~owner id
      (Printf.sprintf "%s (after %d re-enqueues)" reason (tries - 1));
    Lease.release lease;
    `Quarantined
  end
  else begin
    Obs.Metrics.incr m_requeued;
    if Obs.Events.enabled () then
      Obs.Events.record
        ~detail:(Printf.sprintf "shard %d attempt %d: %s" id tries reason)
        "requeue";
    Obs.Log.warn ~tag:"dist" "shard %d re-enqueued (attempt %d/%d): %s" id
      tries cfg.max_requeues reason;
    Lease.release lease;
    `Requeued
  end

(* Drive one freshly claimed shard to a terminal local outcome.
   Returns [`Stop] only when the driver's stop condition fired. *)
let work_one ~cfg ~stop ~owner ~hb lease ~how shard m summary =
  let id = shard.Manifest.id in
  (match how with
  | `Claimed ->
      Obs.Log.info ~tag:"dist" "claimed shard %d [%d, %d)" id
        shard.Manifest.lo shard.Manifest.hi
  | `Reclaimed ->
      Obs.Log.info ~tag:"dist" "reclaimed stale shard %d [%d, %d)" id
        shard.Manifest.lo shard.Manifest.hi);
  let summary =
    {
      summary with
      claimed = summary.claimed + 1;
      reclaimed =
        (summary.reclaimed + match how with `Reclaimed -> 1 | `Claimed -> 0);
    }
  in
  Atomic.incr hb.Heartbeat.claimed;
  (match how with
  | `Reclaimed -> Atomic.incr hb.Heartbeat.reclaimed
  | `Claimed -> ());
  Atomic.set hb.Heartbeat.current_shard id;
  let finish r =
    Atomic.set hb.Heartbeat.current_shard (-1);
    r
  in
  finish
  @@
  match execute ~cfg ~stop ~hb lease shard m with
  | `Lost_lease pairs ->
      Obs.Metrics.incr m_abandoned;
      Atomic.incr hb.Heartbeat.abandoned;
      if Obs.Events.enabled () then
        Obs.Events.record ~detail:(Printf.sprintf "shard %d" id) "abandon";
      Obs.Log.warn ~tag:"dist" "lease on shard %d lost mid-scan; abandoning" id;
      ( `Continue,
        {
          summary with
          abandoned = summary.abandoned + 1;
          pairs = summary.pairs + pairs;
        } )
  | `Stopped pairs ->
      Lease.release lease;
      (`Stop, { summary with pairs = summary.pairs + pairs })
  | `Undecidable (reason, pairs) ->
      quarantine_shard ~cfg ~owner id reason;
      Atomic.incr hb.Heartbeat.quarantined;
      Lease.release lease;
      ( `Continue,
        {
          summary with
          quarantined = summary.quarantined + 1;
          pairs = summary.pairs + pairs;
        } )
  | `Failed (reason, pairs) -> (
      let summary = { summary with pairs = summary.pairs + pairs } in
      match requeue_or_quarantine ~cfg ~owner lease id reason with
      | `Quarantined ->
          Atomic.incr hb.Heartbeat.quarantined;
          (`Continue, { summary with quarantined = summary.quarantined + 1 })
      | `Requeued ->
          Atomic.incr hb.Heartbeat.requeued;
          (`Continue, { summary with requeued = summary.requeued + 1 }))
  | `Scanned (cache, outcome, pairs) -> (
      let summary = { summary with pairs = summary.pairs + pairs } in
      match
        certify_with_retries ~cfg ~owner ~hb ~shard ~lease ~cache outcome
      with
      | Ok written ->
          Obs.Metrics.incr m_completed;
          Atomic.incr hb.Heartbeat.completed;
          Atomic.set hb.Heartbeat.last_checkpoint_s
            (int_of_float ((Store.active ()).Store.now ()));
          Obs.Log.info ~tag:"dist" "shard %d done: %s, %d entries" id
            (match outcome with
            | Record.Exhausted -> "exhausted"
            | Record.Found (p, q) -> Printf.sprintf "found (%d,%d)" p q)
            written;
          Lease.release lease;
          (`Continue, { summary with completed = summary.completed + 1 })
      | Error reason -> (
          match requeue_or_quarantine ~cfg ~owner lease id reason with
          | `Quarantined ->
              Atomic.incr hb.Heartbeat.quarantined;
              (`Continue, { summary with quarantined = summary.quarantined + 1 })
          | `Requeued ->
              Atomic.incr hb.Heartbeat.requeued;
              (`Continue, { summary with requeued = summary.requeued + 1 })))

(* Elastic join: a worker arriving in an already-crowded fleet (more
   fresh heartbeats than pending shards) staggers its first claim sweep
   by a jittered beat instead of piling onto the contention. Purely a
   throughput courtesy — claims stay safe at any arrival rate. *)
let join_stagger ~cfg ~owner =
  let st = Store.active () in
  let observed, _ = Heartbeat.list ~dir:cfg.dir in
  let now = st.Store.now () in
  let fresh =
    List.length
      (List.filter
         (fun (o : Heartbeat.observed) ->
           let age =
             match o.Heartbeat.ob_mtime with
             | Some m -> now -. m
             | None -> now -. o.Heartbeat.ob_view.Heartbeat.v_now
           in
           age <= Top.default_stale_after)
         observed)
  in
  match Manifest.load ~dir:cfg.dir with
  | Error _ -> ()
  | Ok m ->
      let pending =
        Array.fold_left
          (fun acc s ->
            match Manifest.state ~dir:cfg.dir ~ttl:cfg.ttl s with
            | Manifest.Pending -> acc + 1
            | _ -> acc)
          0 m.Manifest.shards
      in
      if fresh > pending && pending >= 0 then begin
        let cap = Float.min (cfg.ttl /. 2.) 2.0 in
        let j =
          Rt.Backoff.stream
            ~seed:(Hashtbl.hash owner land 0x3fffffff)
            ~base_s:0.05 ~max_s:cap ()
        in
        let d = Float.min cap (Rt.Backoff.next j *. float_of_int fresh) in
        Obs.Log.info ~tag:"dist"
          "fleet crowded (%d fresh workers, %d pending shards); staggering \
           join by %.2fs" fresh pending d;
        Unix.sleepf d
      end

let run ?(stop = fun () -> false) cfg =
  (* the manifest read itself must survive a transient store fault:
     losing the whole worker to one EIO blip defeats the fleet *)
  match
    Rt.Backoff.retry ~attempts:4 ~base_s:0.05 ~max_s:0.5 (fun () ->
        Manifest.load ~dir:cfg.dir)
  with
  | Error msg -> Error msg
  | Ok m ->
      let owner = Lease.default_owner () in
      let hb = Heartbeat.make_stats ~owner in
      (* Live advertisement: the tick thread owns all heartbeat I/O (and
         the flight dump, so a SIGKILL loses at most one tick's worth of
         post-mortem). The loop below only ever stores into [hb]'s
         atomics. *)
      let publish ~seq =
        if cfg.heartbeat > 0. then
          Heartbeat.publish ~dir:cfg.dir (Heartbeat.view_of_stats ~seq hb);
        match cfg.flight with
        | Some path -> Obs.Events.dump ~path
        | None -> ()
      in
      let ticker =
        if cfg.heartbeat > 0. || cfg.flight <> None then
          let interval = if cfg.heartbeat > 0. then cfg.heartbeat else 2.0 in
          Some (Obs.Telemetry.ticker ~interval publish)
        else None
      in
      join_stagger ~cfg ~owner;
      let n = Array.length m.Manifest.shards in
      (* start the sweep at an owner-dependent offset so N workers
         launched together don't all stampede shard 0 *)
      let offset = Hashtbl.hash owner mod n in
      let poll = Float.min (cfg.ttl /. 4.) 0.25 in
      (* idle-wait pacing: decorrelated jitter (seeded by owner, so the
         fleet decorrelates but each worker replays deterministically),
         reset to the base after every successful claim *)
      let pace =
        Rt.Backoff.stream
          ~seed:(Hashtbl.hash owner land 0x3fffffff)
          ~base_s:(Float.min poll 0.05) ~max_s:poll ()
      in
      let should_stop () =
        stop () || Rt.Deadline.expired cfg.deadline
        || Rt.Signal.pending () <> None
      in
      let rec loop summary =
        if should_stop () then Ok summary
        else begin
          let claimable = ref [] in
          let busy = ref false in
          for i = 0 to n - 1 do
            let s = m.Manifest.shards.((i + offset) mod n) in
            match Manifest.state ~dir:cfg.dir ~ttl:cfg.ttl s with
            | Manifest.Pending -> claimable := s :: !claimable
            | Manifest.Leased -> busy := true
            | Manifest.Done | Manifest.Quarantined -> ()
          done;
          match List.rev !claimable with
          | [] ->
              if not !busy then Ok summary (* every shard is terminal *)
              else begin
                (* someone else holds the remaining work; sweep dead
                   reclaimers' tombstones while we wait for the holders
                   to finish or go stale *)
                ignore (Lease.sweep_tombstones ~dir:cfg.dir ~ttl:cfg.ttl);
                Unix.sleepf (Rt.Backoff.next pace);
                loop summary
              end
          | candidates -> (
              (* claim the first shard that will have us *)
              let rec claim = function
                | [] -> `None
                | s :: rest -> (
                    match
                      Rt.Fault.fire fp_claim;
                      Lease.try_claim ~ttl:cfg.ttl ~owner
                        (Manifest.lease_path cfg.dir s.Manifest.id)
                    with
                    | exception Rt.Fault.Injected _ ->
                        Atomic.incr hb.Heartbeat.faults;
                        claim rest
                    | `Held -> claim rest
                    | `Claimed lease -> `Go (lease, `Claimed, s)
                    | `Reclaimed lease -> `Go (lease, `Reclaimed, s))
              in
              match claim candidates with
              | `None ->
                  (* all candidates were claimed under us: back off a
                     jittered beat and rescan *)
                  Unix.sleepf (Rt.Backoff.next pace);
                  loop summary
              | `Go (lease, how, s) ->
                  Rt.Backoff.reset pace;
                  if
                    (* the shard may have been finished by a stale
                       holder between our state snapshot and the claim *)
                    (Store.active ()).Store.exists
                      (Manifest.done_path cfg.dir s.Manifest.id)
                    || (Store.active ()).Store.exists
                         (Manifest.quarantine_path cfg.dir s.Manifest.id)
                  then begin
                    Lease.release lease;
                    loop summary
                  end
                  else begin
                    match
                      work_one ~cfg ~stop ~owner ~hb lease ~how s m summary
                    with
                    | `Stop, summary -> Ok summary
                    | `Continue, summary -> loop summary
                  end)
        end
      in
      (* the final heartbeat publishes synchronously on the way out
         (Telemetry.stop ticks once more after the join), so the last
         snapshot on disk agrees with the summary we return *)
      Fun.protect
        ~finally:(fun () -> Option.iter Obs.Telemetry.stop ticker)
        (fun () -> loop zero_summary)
