(* Merge certified shard tables into one frontier table.

   Trust boundary: a completion record certifies a table by checksum
   (see {!Record}); the merge re-checks that binding, then strictly
   revalidates the table itself. Damage found here — bit rot after
   certification, a half-written table from a dead worker whose record
   survived, a checksum that no longer matches — quarantines the shard
   instead of aborting the merge or (worse) silently merging garbage.
   A salvageable table (strict load fails, but per-entry recovery gets
   back at least [salvage_threshold] of the certified entries) is
   merged from its valid subset: monotone merge makes a subset sound,
   it just weakens the coverage claim, so a salvaged shard voids the
   exhaustive bound below.

   The proven bound (k, max_n) is stamped on the output table only when
   every shard merged strictly clean with an Exhausted outcome — i.e.
   the union of windows provably covers the triangle with no equivalent
   pair and no gaps. Any Found, Missing, Quarantined, or Salvaged shard
   withholds the bound (a Found additionally reports the minimal
   witness pair across shards). *)

let m_quarantined = Obs.Metrics.counter "dist.shards_quarantined"
let m_merged = Obs.Metrics.counter "dist.shards_merged"
let m_salvaged = Obs.Metrics.counter "dist.shards_salvaged"

type shard_status =
  | Merged of Efgame.Persist.report
  | Salvaged of Efgame.Persist.report * int
      (** report, plus the certified entry count it fell short of *)
  | Quarantined of string
  | Missing  (** no completion record yet — merge is partial *)

type t = {
  entries : int;  (** entries in the merged output table *)
  merged : int;
  salvaged : int;
  quarantined : int;
  missing : int;
  bound : (int * int) option;  (** stamped on the output when proven *)
  found : (int * int) option;  (** minimal witness pair across shards *)
  per_shard : (int * shard_status) list;
}

let complete t = t.missing = 0 && t.quarantined = 0

(* Merge a salvaged subset into the main cache entry by entry. *)
let blend ~into cache =
  Efgame.Cache.fold cache ~init:() ~f:(fun () key ~win ~lose ->
      if win >= 0 then Efgame.Cache.store into key ~k:win true;
      if lose < max_int then Efgame.Cache.store into key ~k:lose false)

let quarantine ~dir ~owner id reason =
  Obs.Metrics.incr m_quarantined;
  Obs.Log.warn ~tag:"dist" "merge: shard %d quarantined: %s" id reason;
  (match Manifest.quarantine ~dir ~owner id reason with
  | Ok () -> ()
  | Error msg ->
      Obs.Log.err ~tag:"dist" "cannot quarantine shard %d: %s" id msg);
  Quarantined reason

let merge_shard ~dir ~owner ~salvage_threshold ~into (s : Manifest.shard) =
  let id = s.Manifest.id in
  match Manifest.state ~dir ~ttl:infinity s with
  | Manifest.Quarantined ->
      Quarantined
        (Option.value (Manifest.quarantine_reason dir id) ~default:"(unreadable reason)")
  | Manifest.Pending | Manifest.Leased -> Missing
  | Manifest.Done -> (
      (* A transient store fault (EIO flicker, chaos injection) must not
         quarantine a healthy shard: retry the reads with backoff first,
         and only quarantine what still fails when the store has had
         every chance to answer. *)
      match Rt.Backoff.retry ~attempts:4 ~base_s:0.02 ~max_s:0.25 (fun () ->
                Record.read ~dir id)
      with
      | Error msg -> quarantine ~dir ~owner id ("completion record: " ^ msg)
      | Ok record -> (
          (* the record names which table it certifies (a speculator's
             .spec.tbl, or the shard's default); the read already
             rejected path-like references *)
          let table = Record.table_file ~dir record in
          match
            Rt.Backoff.retry ~attempts:4 ~base_s:0.02 ~max_s:0.25 (fun () ->
                Record.file_fnv table)
          with
          | Error msg -> quarantine ~dir ~owner id ("table unreadable: " ^ msg)
          | Ok fnv when fnv <> record.Record.table_fnv ->
              quarantine ~dir ~owner id
                "table checksum does not match its completion record"
          | Ok _ -> (
              match Efgame.Persist.load into table with
              | Ok report ->
                  Obs.Metrics.incr m_merged;
                  Merged report
              | Error _ -> (
                  (* strict failed though the whole-file checksum held;
                     try per-entry recovery into a side cache *)
                  let side = Efgame.Cache.create () in
                  match Efgame.Persist.load ~salvage:true side table with
                  | Error e ->
                      quarantine ~dir ~owner id
                        (Format.asprintf "beyond salvage: %a"
                           Efgame.Persist.pp_error e)
                  | Ok report ->
                      let certified = max 1 record.Record.entries in
                      let fraction =
                        float_of_int report.Efgame.Persist.entries
                        /. float_of_int certified
                      in
                      if fraction >= salvage_threshold then begin
                        blend ~into side;
                        Obs.Metrics.incr m_salvaged;
                        Obs.Log.warn ~tag:"dist"
                          "merge: shard %d salvaged %d/%d entries" id
                          report.Efgame.Persist.entries record.Record.entries;
                        Salvaged (report, record.Record.entries)
                      end
                      else
                        quarantine ~dir ~owner id
                          (Printf.sprintf
                             "salvage recovered only %d of %d entries"
                             report.Efgame.Persist.entries
                             record.Record.entries)))))

let merge ?(salvage_threshold = 0.5) ?(fsync = true) ~dir ~out () =
  match Manifest.load ~dir with
  | Error msg -> Error msg
  | Ok m ->
      let owner = Lease.default_owner () in
      let into = Efgame.Cache.create () in
      let per_shard =
        Array.to_list m.Manifest.shards
        |> List.map (fun s ->
               ( s.Manifest.id,
                 merge_shard ~dir ~owner ~salvage_threshold ~into s ))
      in
      let count f = List.length (List.filter f per_shard) in
      let merged = count (function _, Merged _ -> true | _ -> false) in
      let salvaged = count (function _, Salvaged _ -> true | _ -> false) in
      let quarantined =
        count (function _, Quarantined _ -> true | _ -> false)
      in
      let missing = count (function _, Missing -> true | _ -> false) in
      (* the minimal witness across shards, in the scan's (q, p) order *)
      let found =
        Array.to_list m.Manifest.shards
        |> List.filter_map (fun s ->
               match Record.read ~dir s.Manifest.id with
               | Ok { Record.outcome = Record.Found (p, q); _ } -> Some (p, q)
               | _ -> None)
        |> List.sort (fun (p, q) (p', q') -> compare (q, p) (q', p'))
        |> function [] -> None | x :: _ -> Some x
      in
      let bound =
        if
          missing = 0 && quarantined = 0 && salvaged = 0 && found = None
          && List.for_all
               (function _, Merged _ -> true | _ -> false)
               per_shard
        then Some (m.Manifest.k, m.Manifest.max_n)
        else None
      in
      let save () = Efgame.Persist.save ~fsync ?bound into out in
      (match Rt.Backoff.retry save with
      | Error e -> Error (Format.asprintf "saving %s: %a" out Efgame.Persist.pp_error e)
      | Ok entries ->
          Ok
            {
              entries;
              merged;
              salvaged;
              quarantined;
              missing;
              bound;
              found;
              per_shard;
            })
