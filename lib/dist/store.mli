(** The fleet's storage interface: exactly the primitives the shard
    protocol needs from its shared directory, behind a first-class
    value, with a hostile deterministic implementation for soak tests.

    Everything in [lib/dist] goes through the {e active} store — there
    are no direct [Unix]/[Sys] filesystem calls outside this module
    (CI greps for it). The default {!posix} store is the current
    local-filesystem behavior at zero overhead; {!chaos} wraps any
    store in seeded hostility (coarse mtimes, clock skew, delayed
    rename visibility, torn creates, transient I/O faults) so the
    protocol can be soaked under NFS-like semantics before anyone
    trusts short TTLs there.

    {b The consistency contract} (DESIGN.md decision 9): every store
    declares {!bounds}, and the lease protocol derives its safety
    margins from them instead of assuming POSIX-local sharpness —
    a lease is presumed dead only past [ttl + mtime_granularity +
    clock_skew], and a reclaim needs two observations of an unchanged
    mtime separated by a grace interval of at least the rename
    visibility bound. Under those margins reclaim stays sound: a
    healthy holder renewing at [ttl/3] can never look stale, and a
    rename that is merely slow to become visible can never be mistaken
    for a dead worker. *)

(** Store operation failures. [Absent]: the path does not exist (or is
    not yet visible to this handle — same thing, by the contract).
    [Exists]: an exclusive create lost the race. [Io]: anything
    transient or environmental (EIO, ENOSPC, EINTR, injected); the
    operation may or may not have taken effect — callers must treat it
    as ambiguous. *)
type error = Absent | Exists | Io of string

val error_message : error -> string

(** What the protocol may assume of a store, in seconds. [posix] is all
    zeros; an NFS-like store coarsens mtimes to whole seconds, skews
    each client's clock, and delays visibility of another handle's
    renames. *)
type bounds = {
  mtime_granularity_s : float;
      (** observed mtimes are truncated to multiples of this *)
  clock_skew_s : float;
      (** |this process's clock − any other's| is at most this *)
  rename_visibility_s : float;
      (** a rename/create by another handle is visible within this *)
}

type t = {
  label : string;
  bounds : bounds;
  now : unit -> float;
      (** this process's clock — skewed under chaos, so ages computed
          against store mtimes see exactly the error a real fleet
          would *)
  put_atomic : ?fsync:bool -> string -> string -> (unit, error) result;
      (** [put_atomic path data]: tmp + (fsync) + rename. Readers see
          the whole new content or the whole old one, never a tear. *)
  create_excl : string -> string -> (unit, error) result;
      (** Atomic [O_CREAT|O_EXCL] create with content — the claim
          linearization point. [Exists] if someone else won. [Io] is
          {e ambiguous}: the file may or may not have been created. *)
  read : string -> (string, error) result;
  list : string -> (string array, error) result;
      (** Entry names (not paths) under a directory, sorted. *)
  delete : string -> (unit, error) result;
  rename : src:string -> dst:string -> (unit, error) result;
      (** Atomic; [Absent] when [src] vanished (lost a reclaim race). *)
  touch : string -> (unit, error) result;
      (** Bump mtime to now — the lease heartbeat. *)
  mtime : string -> (float, error) result;
  exists : string -> bool;
  mkdir : string -> (unit, error) result;
      (** [Ok] if created or already present. *)
}

val posix : t
(** The local filesystem, zero-overhead: all bounds 0. *)

(** {1 Derived protocol margins} *)

val stale_margin : t -> float
(** [mtime_granularity + clock_skew]: how much older than the TTL a
    lease mtime must look before it may be presumed dead. *)

val reclaim_grace : t -> ttl:float -> float
(** The interval between the two stale observations a reclaim
    requires: at least the rename-visibility + granularity bound, and
    at least [ttl/4] so one poll cycle at the worker's cadence
    satisfies it. *)

(** {1 Chaos injection} *)

(** Knobs for {!chaos}, all deterministic in the seed. Rates are
    per-operation probabilities in [0, 1]. *)
type profile = {
  p_name : string;
  p_mtime_granularity_s : float;  (** observed mtimes floored to this *)
  p_clock_skew_s : float;  (** per-process skew drawn from ±this *)
  p_visibility_s : float;
      (** another handle's fresh files may read as [Absent] this long *)
  p_fault_rate : float;  (** transient EIO/ENOSPC/EINTR per operation *)
  p_torn_rate : float;
      (** [create_excl] succeeds on disk but reports ambiguous [Io] *)
}

val profiles : (string * profile) list
(** Named profiles: ["nfs-coarse"] (1 s mtimes, ±1.5 s skew, delayed
    visibility, 2% transient faults, 2% torn creates — the CI soak
    profile), ["flaky-io"] (aggressive transient faults and torn
    creates on sharp local semantics), ["skewed-clock"] (coarse mtimes
    and large skew, no faults), ["none"] (identity wrapper). *)

val profile : string -> (profile, string) result

val chaos : ?seed:int -> profile -> t -> t
(** Wrap a store in seeded hostility. Deterministic per (seed, pid):
    the same process replays the same faults. Files written through
    the wrapper by this process never flicker [Absent] (you always see
    your own writes, as on real network filesystems); other handles'
    fresh files may. The wrapped store's {!bounds} advertise the
    injected hostility so the protocol margins absorb it. *)

(** {1 Active store} *)

val active : unit -> t
(** The store every [lib/dist] module uses; {!posix} until {!use}. *)

val use : t -> unit

val of_spec : string -> (t, string) result
(** Parse ["posix"], ["PROFILE"], or ["PROFILE:SEED"] (profile names
    from {!profiles}) into a store over {!posix}. Seed defaults to 0. *)

val setup : ?spec:string -> unit -> (unit, string) result
(** Activate from an explicit spec if given, else from the
    [EFGAME_CHAOS] environment variable if set, else leave {!posix}
    active. [Error] on an unknown profile or malformed spec. *)
