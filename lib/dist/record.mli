(** Shard completion records: the small file whose atomic {e exclusive}
    create promotes a shard to Done, carrying the FNV-1a64 of the table
    file it certifies — the record and the table are separate files,
    and the checksum is what ties a certification to exactly one table
    state (a table replaced or damaged after certification is detected
    at merge time).

    The exclusive create is the winner point of speculative
    re-execution (see {!Worker}): of N racing certifiers exactly one
    record lands, naming its own table file, so a record can never
    certify bytes another racer wrote. Losers dedup by content hash —
    deterministic scans make the duplicate byte-identical, and the
    monotone merge makes even a divergent duplicate harmless to
    discard (DESIGN.md decision 10). *)

type outcome =
  | Exhausted  (** every pair in the window refuted *)
  | Found of int * int  (** minimal equivalent pair within the window *)

type t = {
  shard : int;
  owner : string;
  outcome : outcome;
  entries : int;  (** entries in the certified table *)
  table_fnv : int64;  (** FNV-1a64 of the table file's bytes *)
  table : string option;
      (** basename of the certified table when it is not the shard's
          default [shard-NNNN.tbl] (a speculator's [.spec.tbl]);
          validated on read to be a bare basename *)
  wall_ns : int64 option;
      (** wall time of the certifying scan — the calibration input for
          {!Cost.calibrate} *)
}

val file_fnv : string -> (int64, string) result

val table_file : dir:string -> t -> string
(** The table file this record certifies, resolved under [dir]. *)

val write :
  ?replace:bool ->
  dir:string ->
  t ->
  [ `Written | `Lost of t option | `Error of string ]
(** Exclusive create: of N racing certifiers exactly one [`Written]
    lands. [`Lost] carries the winning record when it could be read
    back — first record wins, the caller discards its own output.
    [replace:true] (default false) overwrites unconditionally:
    {!Heal} re-certifying a repaired shard; nothing else may use it. *)

val read : dir:string -> int -> (t, string) result
