(** Shard completion records: the small file whose atomic rename
    promotes a shard to Done, carrying the FNV-1a64 of the table file it
    certifies — the record and the table are separate files, and the
    checksum is what ties a certification to exactly one table state
    (a table replaced or damaged after certification is detected at
    merge time). *)

type outcome =
  | Exhausted  (** every pair in the window refuted *)
  | Found of int * int  (** minimal equivalent pair within the window *)

type t = {
  shard : int;
  owner : string;
  outcome : outcome;
  entries : int;  (** entries in the certified table *)
  table_fnv : int64;  (** FNV-1a64 of the table file's bytes *)
}

val file_fnv : string -> (int64, string) result
val write : dir:string -> t -> (unit, string) result
(** Atomic (tmp + fsync + rename). *)

val read : dir:string -> int -> (t, string) result
