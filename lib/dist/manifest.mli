(** The shard manifest: one immutable, checksummed file cutting a
    frontier scan into triangle windows, plus the filesystem-derived
    per-shard lifecycle.

    Everything {e mutable} about a scan — who holds which shard, which
    shards are finished or quarantined — is deliberately not in the
    manifest. Per-shard state is derived from the presence and age of
    sibling files ([shard-NNNN.lease] / [.done] / [.quarantine]), so
    there is no coordinator process and no file two workers ever update
    concurrently; the shared directory {e is} the cluster state. *)

type shard = { id : int; lo : int; hi : int }
(** A half-open window [lo, hi) of the linearized (p, q) triangle
    (see {!Efgame.Witness.index_of_pair}). *)

type t = {
  k : int;
  max_n : int;
  total : int;
  model : Cost.model;  (** the cost model the windows were tiled by *)
  shards : shard array;
}

(** Shard lifecycle, derived from the filesystem by {!state}:
    [Quarantined] if a quarantine record exists (terminal), else [Done]
    if a completion record exists, else [Leased] if a lease file exists
    with mtime within the TTL, else [Pending] — which includes a
    {e stale} lease (mtime past the TTL), claimable via reclaim. *)
type state = Pending | Leased | Done | Quarantined

val create :
  ?model:Cost.model -> k:int -> max_n:int -> shards:int -> unit -> t
(** Cut the triangle for [max_n] into [shards] nonempty windows of
    near-equal {e model cost} (equal pair counts under the default
    [Uniform]; see {!Cost.tile}), capped at one pair per shard.
    [Invalid_argument] on nonsensical parameters. *)

val save : t -> dir:string -> (unit, string) result
(** Write [dir]/manifest (tmp + fsync + atomic rename). Refuses to
    overwrite an existing manifest: the manifest is immutable, and a
    scan directory is initialized exactly once. *)

val load : dir:string -> (t, string) result
(** Read and validate: version, trailing whole-file checksum, field
    consistency (total matches max_n, windows inside the triangle). *)

val state : dir:string -> ttl:float -> shard -> state
val lease_age : string -> int -> float option
(** Seconds since the shard's lease heartbeat, if a lease file exists. *)

type counts = {
  pending : int;
  leased : int;
  stale : int;  (** subset of [pending] held by a lease past the TTL *)
  done_ : int;
  quarantined : int;
}

val counts : dir:string -> ttl:float -> t -> counts

(** {1 Shard file layout} — all under the scan directory. *)

val path : string -> string
val table_path : string -> int -> string
val lease_path : string -> int -> string
val done_path : string -> int -> string
val retries_path : string -> int -> string
val quarantine_path : string -> int -> string

val spec_lease_path : string -> int -> string
(** The {e secondary} lease a speculating worker claims before
    re-executing a straggler-held shard (see {!Worker}): at most one
    speculator per shard, never contending with the primary lease. *)

val spec_table_path : string -> int -> string
(** Where a speculator writes its table — distinct from
    {!table_path}, so primary and speculator never race on table
    bytes; the completion record names which file it certifies. *)

val spec_table_name : int -> string
(** Basename of {!spec_table_path}, as stored in a record's [table]
    field. *)

(** {1 Cross-worker retry counter and quarantine records} *)

val retries : string -> int -> int
(** Re-enqueue count so far (0 when the counter file is absent). *)

val bump_retries : string -> int -> int
(** Increment and return the new count. Last-writer-wins: only the
    lease holder bumps it, and it only gates retry exhaustion. *)

val quarantine : dir:string -> owner:string -> int -> string -> (unit, string) result
(** Write the shard's quarantine record (terminal: {!state} reports
    [Quarantined] from now on) with the given reason. *)

val quarantine_reason : string -> int -> string option

val fnv1a64 : string -> int64
(** The repo-standard integrity hash (shared with {!Efgame.Persist}). *)
