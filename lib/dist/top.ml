(* The fleet aggregator behind [efgame_cli shard top]: fold every
   readable worker heartbeat plus the manifest's derived shard states
   into one live view — fleet throughput, per-worker share, ETA from
   the windows still outstanding.

   [aggregate] is a pure function of its inputs (clock included), so
   the qcheck property "the fleet row is the sum of the worker rows"
   can drive it with arbitrary snapshots; all the I/O and tolerance
   lives in {!Heartbeat.list} and the caller. *)

type worker_row = {
  hb : Heartbeat.view;
  age : float;
      (** seconds since the snapshot appeared, judged against the
          store-observed file mtime when available (the publisher's own
          clock may be skewed), else against its self-reported [v_now] *)
  fresh : bool;
  skew_s : float option;
      (** publisher clock minus store mtime — how far this worker's
          clock disagrees with the store's, when the mtime is known *)
  skewed : bool;  (** |skew_s| beyond the margin: flagged, not stale *)
  rate : float;  (** pairs/s over the worker's uptime *)
  cost_rate : float;  (** model-cost units/s (0 under Uniform) *)
  share : float;  (** of the fleet's pairs; 0 when the fleet is at 0 *)
  straggler : bool;
      (** holding a shard at a progress rate far below the fleet's
          robust median — a speculation candidate, not an error *)
}

type t = {
  now : float;
  workers : worker_row list;  (** sorted by owner *)
  fleet_pairs : int;
  fleet_completed : int;
  fleet_claimed : int;
  fleet_reclaimed : int;
  fleet_abandoned : int;
  fleet_requeued : int;
  fleet_quarantined : int;
  fleet_cache_hits : int;
  fleet_cache_misses : int;
  fleet_faults : int;
  fleet_retries : int;
  rate : float;  (** Σ rate over fresh workers *)
  shards_pending : int;
  shards_leased : int;
  shards_done : int;
  shards_quarantined : int;
  total_pairs : int;  (** Σ window sizes over every shard *)
  done_pairs : int;  (** Σ window sizes over Done shards *)
  remaining_pairs : int;  (** Σ window sizes over Pending/Leased shards *)
  total_cost : float;  (** Σ model window costs over every shard *)
  done_cost : float;  (** Σ model window costs over Done shards *)
  remaining_cost : float;  (** Σ over Pending/Leased shards *)
  eta_s : float option;  (** remaining work / fleet rate; None at 0 *)
  eta_basis : string;  (** ["cost"] or ["pairs"] — what the ETA divides *)
  stragglers : int list;  (** shard ids held at a straggling rate *)
}

let default_stale_after = 10.
let default_skew_margin = 2.0

(* Robust straggler cut: median and MAD tolerate the skewed rate
   distributions a heterogeneous fleet produces (one slow box, one
   throttled container) where a mean/stddev cut would either miss the
   straggler or flag half the fleet. A worker is a straggler when its
   progress rate falls below the fleet median by more than
   max(3 sigma-equivalents of MAD, 25% of the median) — the floor keeps
   a near-uniform fleet (MAD ~ 0) from flagging harmless jitter. *)
let median = function
  | [] -> 0.
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let straggler_cut rates =
  match rates with
  | _ when List.length rates < 3 -> None  (* no meaningful median *)
  | rates ->
      let med = median rates in
      if med <= 0. then None
      else
        let mad = median (List.map (fun r -> Float.abs (r -. med)) rates) in
        Some (med -. Float.max (3. *. 1.4826 *. mad) (0.25 *. med))

let aggregate ~now ?(stale_after = default_stale_after)
    ?(skew_margin = default_skew_margin) ?(model = Cost.Uniform)
    ?(states = []) observed =
  let observed =
    List.sort
      (fun a b ->
        compare a.Heartbeat.ob_view.Heartbeat.v_owner
          b.Heartbeat.ob_view.Heartbeat.v_owner)
      observed
  in
  let views = List.map (fun o -> o.Heartbeat.ob_view) observed in
  let sum f = List.fold_left (fun acc v -> acc + f v) 0 views in
  let fleet_pairs = sum (fun v -> v.Heartbeat.v_pairs) in
  let base =
    List.map
      (fun (o : Heartbeat.observed) ->
        let v = o.Heartbeat.ob_view in
        (* Staleness against the store-observed mtime when we have one:
           a worker whose clock runs ahead or behind is then flagged as
           skewed instead of being mis-classified fresh or stale. *)
        let age =
          match o.Heartbeat.ob_mtime with
          | Some m -> Float.max 0. (now -. m)
          | None -> Float.max 0. (now -. v.Heartbeat.v_now)
        in
        let fresh = age <= stale_after in
        let skew_s =
          Option.map (fun m -> v.Heartbeat.v_now -. m) o.Heartbeat.ob_mtime
        in
        let skewed =
          match skew_s with
          | Some s -> Float.abs s > skew_margin
          | None -> false
        in
        let up = Heartbeat.uptime v in
        let cost_rate =
          if up <= 0. then 0.
          else float_of_int v.Heartbeat.v_cost_done /. up
        in
        {
          hb = v;
          age;
          fresh;
          skew_s;
          skewed;
          rate = Heartbeat.pairs_per_s v;
          cost_rate;
          share =
            (if fleet_pairs = 0 then 0.
             else
               float_of_int v.Heartbeat.v_pairs /. float_of_int fleet_pairs);
          straggler = false;
        })
      observed
  in
  (* Straggler detection runs over the fresh workers currently holding
     a shard (an idle worker progresses at 0 legitimately). With
     cost-model windows the pair rates of healthy workers legitimately
     diverge (deep-q windows hold fewer, costlier pairs), so the
     detector compares model-cost rates whenever the model prices work
     unevenly — skew tolerance comes from the MAD cut, not the unit. *)
  let detection_rate (r : worker_row) =
    match model with Cost.Uniform -> r.rate | Cost.Power _ -> r.cost_rate
  in
  let holding =
    List.filter
      (fun r -> r.fresh && r.hb.Heartbeat.v_current_shard <> None)
      base
  in
  let cut = straggler_cut (List.map detection_rate holding) in
  let workers =
    List.map
      (fun r ->
        let straggler =
          match cut with
          | Some threshold ->
              r.fresh
              && r.hb.Heartbeat.v_current_shard <> None
              && detection_rate r < threshold
          | None -> false
        in
        { r with straggler })
      base
  in
  let stragglers =
    List.filter_map
      (fun r ->
        if r.straggler then r.hb.Heartbeat.v_current_shard else None)
      workers
    |> List.sort_uniq compare
  in
  let rate =
    List.fold_left
      (fun acc w -> if w.fresh then acc +. w.rate else acc)
      0. workers
  in
  let count_state want =
    List.length (List.filter (fun (_, st) -> st = want) states)
  in
  let pairs_in want =
    List.fold_left
      (fun acc ((s : Manifest.shard), st) ->
        if st = want then acc + (s.hi - s.lo) else acc)
      0 states
  in
  let total_pairs =
    List.fold_left (fun acc ((s : Manifest.shard), _) -> acc + (s.hi - s.lo)) 0 states
  in
  let remaining_pairs = pairs_in Manifest.Pending + pairs_in Manifest.Leased in
  let cost_in pred =
    List.fold_left
      (fun acc ((s : Manifest.shard), st) ->
        if pred st then acc +. Cost.window_cost model s.lo s.hi else acc)
      0. states
  in
  let total_cost = cost_in (fun _ -> true) in
  let done_cost = cost_in (fun st -> st = Manifest.Done) in
  let remaining_cost =
    cost_in (fun st -> st = Manifest.Pending || st = Manifest.Leased)
  in
  let cost_rate_sum =
    List.fold_left
      (fun acc w -> if w.fresh then acc +. w.cost_rate else acc)
      0. workers
  in
  {
    now;
    workers;
    fleet_pairs;
    fleet_completed = sum (fun v -> v.Heartbeat.v_completed);
    fleet_claimed = sum (fun v -> v.Heartbeat.v_claimed);
    fleet_reclaimed = sum (fun v -> v.Heartbeat.v_reclaimed);
    fleet_abandoned = sum (fun v -> v.Heartbeat.v_abandoned);
    fleet_requeued = sum (fun v -> v.Heartbeat.v_requeued);
    fleet_quarantined = sum (fun v -> v.Heartbeat.v_quarantined);
    fleet_cache_hits = sum (fun v -> v.Heartbeat.v_cache_hits);
    fleet_cache_misses = sum (fun v -> v.Heartbeat.v_cache_misses);
    fleet_faults = sum (fun v -> v.Heartbeat.v_faults);
    fleet_retries = sum (fun v -> v.Heartbeat.v_retries);
    rate;
    shards_pending = count_state Manifest.Pending;
    shards_leased = count_state Manifest.Leased;
    shards_done = count_state Manifest.Done;
    shards_quarantined = count_state Manifest.Quarantined;
    total_pairs;
    done_pairs = pairs_in Manifest.Done;
    remaining_pairs;
    total_cost;
    done_cost;
    remaining_cost;
    (* ETA divides remaining model cost by the fleet's cost rate when
       the model prices work unevenly and the workers report cost
       progress; otherwise the legacy pairs basis. The basis is carried
       so consumers know which estimate they are reading. *)
    eta_s =
      (if model <> Cost.Uniform && remaining_cost > 0. && cost_rate_sum > 0.
       then Some (remaining_cost /. cost_rate_sum)
       else if remaining_pairs > 0 && rate > 0. then
         Some (float_of_int remaining_pairs /. rate)
       else None);
    eta_basis =
      (if model <> Cost.Uniform && remaining_cost > 0. && cost_rate_sum > 0.
       then "cost"
       else "pairs");
    stragglers;
  }

(* ----------------------------------------------------------- output *)

let write_json ?(warnings = []) t w =
  let module J = Obs.Jsonw in
  J.obj w (fun w ->
      (* /2 added cost-model totals, the ETA basis, and straggler
         flags; every /1 field is unchanged *)
      J.field_string w "schema" "efgame-top/2";
      J.field_float ~prec:6 w "now_s" t.now;
      J.field w "fleet" (fun w ->
          J.obj w (fun w ->
              J.field_int w "workers" (List.length t.workers);
              J.field_int w "fresh_workers"
                (List.length (List.filter (fun r -> r.fresh) t.workers));
              J.field_int w "pairs" t.fleet_pairs;
              J.field_float ~prec:2 w "pairs_per_s" t.rate;
              (match t.eta_s with
              | Some eta -> J.field_float ~prec:1 w "eta_s" eta
              | None -> J.field_null w "eta_s");
              J.field_string w "eta_basis" t.eta_basis;
              J.field_int w "stragglers" (List.length t.stragglers);
              J.field_int w "completed" t.fleet_completed;
              J.field_int w "claimed" t.fleet_claimed;
              J.field_int w "reclaimed" t.fleet_reclaimed;
              J.field_int w "abandoned" t.fleet_abandoned;
              J.field_int w "requeued" t.fleet_requeued;
              J.field_int w "quarantined" t.fleet_quarantined;
              J.field_int w "cache_hits" t.fleet_cache_hits;
              J.field_int w "cache_misses" t.fleet_cache_misses;
              J.field_int w "faults" t.fleet_faults;
              J.field_int w "retries" t.fleet_retries));
      J.field w "shards" (fun w ->
          J.obj w (fun w ->
              J.field_int w "pending" t.shards_pending;
              J.field_int w "leased" t.shards_leased;
              J.field_int w "done" t.shards_done;
              J.field_int w "quarantined" t.shards_quarantined;
              J.field_int w "total_pairs" t.total_pairs;
              J.field_int w "done_pairs" t.done_pairs;
              J.field_int w "remaining_pairs" t.remaining_pairs;
              J.field_float ~prec:1 w "total_cost" t.total_cost;
              J.field_float ~prec:1 w "done_cost" t.done_cost;
              J.field_float ~prec:1 w "remaining_cost" t.remaining_cost;
              J.field w "stragglers" (fun w ->
                  J.arr w (fun w -> List.iter (J.int w) t.stragglers))));
      J.field w "workers" (fun w ->
          J.arr w (fun w ->
              List.iter
                (fun r ->
                  let v = r.hb in
                  J.obj w (fun w ->
                      J.field_string w "owner" v.Heartbeat.v_owner;
                      J.field_string w "host" v.Heartbeat.v_host;
                      J.field_int w "pid" v.Heartbeat.v_pid;
                      J.field_float ~prec:2 w "age_s" r.age;
                      J.field_bool w "fresh" r.fresh;
                      (match r.skew_s with
                      | Some s -> J.field_float ~prec:2 w "clock_skew_s" s
                      | None -> J.field_null w "clock_skew_s");
                      J.field_bool w "clock_skewed" r.skewed;
                      J.field_int w "pairs" v.Heartbeat.v_pairs;
                      J.field_float ~prec:2 w "pairs_per_s" r.rate;
                      J.field_float ~prec:2 w "cost_per_s" r.cost_rate;
                      J.field_bool w "straggler" r.straggler;
                      J.field_int w "speculated" v.Heartbeat.v_speculated;
                      J.field_int w "spec_wins" v.Heartbeat.v_spec_wins;
                      J.field_float ~prec:4 w "share" r.share;
                      J.field_int w "completed" v.Heartbeat.v_completed;
                      J.field_int w "requeued" v.Heartbeat.v_requeued;
                      J.field_int w "quarantined" v.Heartbeat.v_quarantined;
                      J.field_int w "faults" v.Heartbeat.v_faults;
                      J.field_float ~prec:4 w "cache_hit_rate"
                        (Heartbeat.cache_hit_rate v);
                      (match v.Heartbeat.v_current_shard with
                      | Some id -> J.field_int w "current_shard" id
                      | None -> J.field_null w "current_shard");
                      match Heartbeat.checkpoint_age v with
                      | Some age ->
                          J.field_float ~prec:1 w "last_checkpoint_age_s"
                            (age +. r.age)
                      | None -> J.field_null w "last_checkpoint_age_s"))
                t.workers));
      J.field w "warnings" (fun w ->
          J.arr w (fun w -> List.iter (J.string w) warnings)))

let pp_eta ppf = function
  | None -> Format.fprintf ppf "-"
  | Some s when s >= 3600. -> Format.fprintf ppf "%.1fh" (s /. 3600.)
  | Some s when s >= 60. -> Format.fprintf ppf "%.1fm" (s /. 60.)
  | Some s -> Format.fprintf ppf "%.0fs" s

let render ?(warnings = []) t =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  let fresh = List.length (List.filter (fun r -> r.fresh) t.workers) in
  Format.fprintf ppf
    "fleet: %d worker(s) (%d fresh)  %d pairs  %.1f pairs/s  eta %a (%s)@."
    (List.length t.workers) fresh t.fleet_pairs t.rate pp_eta t.eta_s
    t.eta_basis;
  Format.fprintf ppf
    "shards: %d pending, %d leased, %d done, %d quarantined  (%d / %d pairs done)@."
    t.shards_pending t.shards_leased t.shards_done t.shards_quarantined
    t.done_pairs t.total_pairs;
  if t.fleet_reclaimed + t.fleet_requeued + t.fleet_abandoned > 0 then
    Format.fprintf ppf
      "events: %d reclaimed, %d requeued, %d abandoned, %d faults@."
      t.fleet_reclaimed t.fleet_requeued t.fleet_abandoned t.fleet_faults;
  (match t.stragglers with
  | [] -> ()
  | ids ->
      Format.fprintf ppf "stragglers: shard(s) %s@."
        (String.concat ", " (List.map string_of_int ids)));
  Format.fprintf ppf
    "@[<v>%-34s %6s %9s %6s %6s %7s %6s %8s@]@." "owner" "age" "pairs"
    "rate" "share" "hit%" "shard" "ckpt-age";
  List.iter
    (fun r ->
      let v = r.hb in
      Format.fprintf ppf "%-34s %5.1fs %9d %6.1f %5.1f%% %6.1f%% %6s %8s%s@."
        v.Heartbeat.v_owner r.age v.Heartbeat.v_pairs r.rate (r.share *. 100.)
        (Heartbeat.cache_hit_rate v *. 100.)
        (match v.Heartbeat.v_current_shard with
        | Some id -> string_of_int id
        | None -> "-")
        (match Heartbeat.checkpoint_age v with
        | Some age -> Printf.sprintf "%.0fs" (age +. r.age)
        | None -> "-")
        ((match (r.fresh, r.skewed, r.skew_s) with
         | false, _, _ -> "  [stale]"
         | true, true, Some s -> Printf.sprintf "  [skew %+.1fs]" s
         | true, _, _ -> "")
        ^ if r.straggler then "  [straggler]" else ""))
    t.workers;
  List.iter (fun wmsg -> Format.fprintf ppf "warning: %s@." wmsg) warnings;
  Format.pp_print_flush ppf ();
  Buffer.contents b
