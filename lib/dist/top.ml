(* The fleet aggregator behind [efgame_cli shard top]: fold every
   readable worker heartbeat plus the manifest's derived shard states
   into one live view — fleet throughput, per-worker share, ETA from
   the windows still outstanding.

   [aggregate] is a pure function of its inputs (clock included), so
   the qcheck property "the fleet row is the sum of the worker rows"
   can drive it with arbitrary snapshots; all the I/O and tolerance
   lives in {!Heartbeat.list} and the caller. *)

type worker_row = {
  hb : Heartbeat.view;
  age : float;
      (** seconds since the snapshot appeared, judged against the
          store-observed file mtime when available (the publisher's own
          clock may be skewed), else against its self-reported [v_now] *)
  fresh : bool;
  skew_s : float option;
      (** publisher clock minus store mtime — how far this worker's
          clock disagrees with the store's, when the mtime is known *)
  skewed : bool;  (** |skew_s| beyond the margin: flagged, not stale *)
  rate : float;  (** pairs/s over the worker's uptime *)
  share : float;  (** of the fleet's pairs; 0 when the fleet is at 0 *)
}

type t = {
  now : float;
  workers : worker_row list;  (** sorted by owner *)
  fleet_pairs : int;
  fleet_completed : int;
  fleet_claimed : int;
  fleet_reclaimed : int;
  fleet_abandoned : int;
  fleet_requeued : int;
  fleet_quarantined : int;
  fleet_cache_hits : int;
  fleet_cache_misses : int;
  fleet_faults : int;
  fleet_retries : int;
  rate : float;  (** Σ rate over fresh workers *)
  shards_pending : int;
  shards_leased : int;
  shards_done : int;
  shards_quarantined : int;
  total_pairs : int;  (** Σ window sizes over every shard *)
  done_pairs : int;  (** Σ window sizes over Done shards *)
  remaining_pairs : int;  (** Σ window sizes over Pending/Leased shards *)
  eta_s : float option;  (** remaining / rate; None when either is 0 *)
}

let default_stale_after = 10.
let default_skew_margin = 2.0

let aggregate ~now ?(stale_after = default_stale_after)
    ?(skew_margin = default_skew_margin) ?(states = []) observed =
  let observed =
    List.sort
      (fun a b ->
        compare a.Heartbeat.ob_view.Heartbeat.v_owner
          b.Heartbeat.ob_view.Heartbeat.v_owner)
      observed
  in
  let views = List.map (fun o -> o.Heartbeat.ob_view) observed in
  let sum f = List.fold_left (fun acc v -> acc + f v) 0 views in
  let fleet_pairs = sum (fun v -> v.Heartbeat.v_pairs) in
  let workers =
    List.map
      (fun (o : Heartbeat.observed) ->
        let v = o.Heartbeat.ob_view in
        (* Staleness against the store-observed mtime when we have one:
           a worker whose clock runs ahead or behind is then flagged as
           skewed instead of being mis-classified fresh or stale. *)
        let age =
          match o.Heartbeat.ob_mtime with
          | Some m -> Float.max 0. (now -. m)
          | None -> Float.max 0. (now -. v.Heartbeat.v_now)
        in
        let fresh = age <= stale_after in
        let skew_s =
          Option.map (fun m -> v.Heartbeat.v_now -. m) o.Heartbeat.ob_mtime
        in
        let skewed =
          match skew_s with
          | Some s -> Float.abs s > skew_margin
          | None -> false
        in
        {
          hb = v;
          age;
          fresh;
          skew_s;
          skewed;
          rate = Heartbeat.pairs_per_s v;
          share =
            (if fleet_pairs = 0 then 0.
             else
               float_of_int v.Heartbeat.v_pairs /. float_of_int fleet_pairs);
        })
      observed
  in
  let rate =
    List.fold_left
      (fun acc w -> if w.fresh then acc +. w.rate else acc)
      0. workers
  in
  let count_state want =
    List.length (List.filter (fun (_, st) -> st = want) states)
  in
  let pairs_in want =
    List.fold_left
      (fun acc ((s : Manifest.shard), st) ->
        if st = want then acc + (s.hi - s.lo) else acc)
      0 states
  in
  let total_pairs =
    List.fold_left (fun acc ((s : Manifest.shard), _) -> acc + (s.hi - s.lo)) 0 states
  in
  let remaining_pairs = pairs_in Manifest.Pending + pairs_in Manifest.Leased in
  {
    now;
    workers;
    fleet_pairs;
    fleet_completed = sum (fun v -> v.Heartbeat.v_completed);
    fleet_claimed = sum (fun v -> v.Heartbeat.v_claimed);
    fleet_reclaimed = sum (fun v -> v.Heartbeat.v_reclaimed);
    fleet_abandoned = sum (fun v -> v.Heartbeat.v_abandoned);
    fleet_requeued = sum (fun v -> v.Heartbeat.v_requeued);
    fleet_quarantined = sum (fun v -> v.Heartbeat.v_quarantined);
    fleet_cache_hits = sum (fun v -> v.Heartbeat.v_cache_hits);
    fleet_cache_misses = sum (fun v -> v.Heartbeat.v_cache_misses);
    fleet_faults = sum (fun v -> v.Heartbeat.v_faults);
    fleet_retries = sum (fun v -> v.Heartbeat.v_retries);
    rate;
    shards_pending = count_state Manifest.Pending;
    shards_leased = count_state Manifest.Leased;
    shards_done = count_state Manifest.Done;
    shards_quarantined = count_state Manifest.Quarantined;
    total_pairs;
    done_pairs = pairs_in Manifest.Done;
    remaining_pairs;
    eta_s =
      (if remaining_pairs > 0 && rate > 0. then
         Some (float_of_int remaining_pairs /. rate)
       else None);
  }

(* ----------------------------------------------------------- output *)

let write_json ?(warnings = []) t w =
  let module J = Obs.Jsonw in
  J.obj w (fun w ->
      J.field_string w "schema" "efgame-top/1";
      J.field_float ~prec:6 w "now_s" t.now;
      J.field w "fleet" (fun w ->
          J.obj w (fun w ->
              J.field_int w "workers" (List.length t.workers);
              J.field_int w "fresh_workers"
                (List.length (List.filter (fun r -> r.fresh) t.workers));
              J.field_int w "pairs" t.fleet_pairs;
              J.field_float ~prec:2 w "pairs_per_s" t.rate;
              (match t.eta_s with
              | Some eta -> J.field_float ~prec:1 w "eta_s" eta
              | None -> J.field_null w "eta_s");
              J.field_int w "completed" t.fleet_completed;
              J.field_int w "claimed" t.fleet_claimed;
              J.field_int w "reclaimed" t.fleet_reclaimed;
              J.field_int w "abandoned" t.fleet_abandoned;
              J.field_int w "requeued" t.fleet_requeued;
              J.field_int w "quarantined" t.fleet_quarantined;
              J.field_int w "cache_hits" t.fleet_cache_hits;
              J.field_int w "cache_misses" t.fleet_cache_misses;
              J.field_int w "faults" t.fleet_faults;
              J.field_int w "retries" t.fleet_retries));
      J.field w "shards" (fun w ->
          J.obj w (fun w ->
              J.field_int w "pending" t.shards_pending;
              J.field_int w "leased" t.shards_leased;
              J.field_int w "done" t.shards_done;
              J.field_int w "quarantined" t.shards_quarantined;
              J.field_int w "total_pairs" t.total_pairs;
              J.field_int w "done_pairs" t.done_pairs;
              J.field_int w "remaining_pairs" t.remaining_pairs));
      J.field w "workers" (fun w ->
          J.arr w (fun w ->
              List.iter
                (fun r ->
                  let v = r.hb in
                  J.obj w (fun w ->
                      J.field_string w "owner" v.Heartbeat.v_owner;
                      J.field_string w "host" v.Heartbeat.v_host;
                      J.field_int w "pid" v.Heartbeat.v_pid;
                      J.field_float ~prec:2 w "age_s" r.age;
                      J.field_bool w "fresh" r.fresh;
                      (match r.skew_s with
                      | Some s -> J.field_float ~prec:2 w "clock_skew_s" s
                      | None -> J.field_null w "clock_skew_s");
                      J.field_bool w "clock_skewed" r.skewed;
                      J.field_int w "pairs" v.Heartbeat.v_pairs;
                      J.field_float ~prec:2 w "pairs_per_s" r.rate;
                      J.field_float ~prec:4 w "share" r.share;
                      J.field_int w "completed" v.Heartbeat.v_completed;
                      J.field_int w "requeued" v.Heartbeat.v_requeued;
                      J.field_int w "quarantined" v.Heartbeat.v_quarantined;
                      J.field_int w "faults" v.Heartbeat.v_faults;
                      J.field_float ~prec:4 w "cache_hit_rate"
                        (Heartbeat.cache_hit_rate v);
                      (match v.Heartbeat.v_current_shard with
                      | Some id -> J.field_int w "current_shard" id
                      | None -> J.field_null w "current_shard");
                      match Heartbeat.checkpoint_age v with
                      | Some age ->
                          J.field_float ~prec:1 w "last_checkpoint_age_s"
                            (age +. r.age)
                      | None -> J.field_null w "last_checkpoint_age_s"))
                t.workers));
      J.field w "warnings" (fun w ->
          J.arr w (fun w -> List.iter (J.string w) warnings)))

let pp_eta ppf = function
  | None -> Format.fprintf ppf "-"
  | Some s when s >= 3600. -> Format.fprintf ppf "%.1fh" (s /. 3600.)
  | Some s when s >= 60. -> Format.fprintf ppf "%.1fm" (s /. 60.)
  | Some s -> Format.fprintf ppf "%.0fs" s

let render ?(warnings = []) t =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  let fresh = List.length (List.filter (fun r -> r.fresh) t.workers) in
  Format.fprintf ppf
    "fleet: %d worker(s) (%d fresh)  %d pairs  %.1f pairs/s  eta %a@."
    (List.length t.workers) fresh t.fleet_pairs t.rate pp_eta t.eta_s;
  Format.fprintf ppf
    "shards: %d pending, %d leased, %d done, %d quarantined  (%d / %d pairs done)@."
    t.shards_pending t.shards_leased t.shards_done t.shards_quarantined
    t.done_pairs t.total_pairs;
  if t.fleet_reclaimed + t.fleet_requeued + t.fleet_abandoned > 0 then
    Format.fprintf ppf
      "events: %d reclaimed, %d requeued, %d abandoned, %d faults@."
      t.fleet_reclaimed t.fleet_requeued t.fleet_abandoned t.fleet_faults;
  Format.fprintf ppf
    "@[<v>%-34s %6s %9s %6s %6s %7s %6s %8s@]@." "owner" "age" "pairs"
    "rate" "share" "hit%" "shard" "ckpt-age";
  List.iter
    (fun r ->
      let v = r.hb in
      Format.fprintf ppf "%-34s %5.1fs %9d %6.1f %5.1f%% %6.1f%% %6s %8s%s@."
        v.Heartbeat.v_owner r.age v.Heartbeat.v_pairs r.rate (r.share *. 100.)
        (Heartbeat.cache_hit_rate v *. 100.)
        (match v.Heartbeat.v_current_shard with
        | Some id -> string_of_int id
        | None -> "-")
        (match Heartbeat.checkpoint_age v with
        | Some age -> Printf.sprintf "%.0fs" (age +. r.age)
        | None -> "-")
        (match (r.fresh, r.skewed, r.skew_s) with
        | false, _, _ -> "  [stale]"
        | true, true, Some s -> Printf.sprintf "  [skew %+.1fs]" s
        | true, _, _ -> ""))
    t.workers;
  List.iter (fun wmsg -> Format.fprintf ppf "warning: %s@." wmsg) warnings;
  Format.pp_print_flush ppf ();
  Buffer.contents b
