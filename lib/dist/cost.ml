(* Cost models for shard manifests: how expensive is a pair (p, q) to
   solve, as a function of its position in the linearized triangle?

   Equal-pair windows make the deep-q shards dominate wall time (the
   solver explores ~ (q+1)^alpha nodes per pair for some workload
   exponent alpha), so the fleet's finish line is set by whichever
   worker drew the deepest window — the drain tail. Weighting windows
   by estimated cost instead of pair count makes shards equal in
   expected *work*, which is what actually kills the tail.

   The model is deliberately one-parameter: cost(p, q) = (q + 1)^alpha
   (q >= p dominates the position size). [calibrate] fits alpha from
   measured per-window wall times of a previous run of the same
   workload — the [wall_ns] field of completion records, which is
   solve.pair_ns aggregated over the window — by least squares on the
   log-residuals over a deterministic grid; with fewer than two usable
   samples it falls back to the static depth-based default
   ([Power default_alpha]), which models the solver's roughly quadratic
   node growth in word length. An exponent is all the precision the
   tiling can use: windows are cut at pair granularity anyway. *)

type model = Uniform | Power of float

let default_alpha = 2.0

let to_string = function
  | Uniform -> "uniform"
  | Power a -> Printf.sprintf "power:%g" a

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "uniform" -> Ok Uniform
  | s -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "power" -> (
          let a = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt a with
          | Some a when Float.is_finite a && a >= 0. && a <= 16. ->
              Ok (Power a)
          | _ -> Error (Printf.sprintf "invalid cost exponent %S" a))
      | _ ->
          Error
            (Printf.sprintf
               "unknown cost model %S (want uniform or power:ALPHA)" s))

let pair_cost model q =
  match model with
  | Uniform -> 1.0
  | Power alpha -> Float.of_int (q + 1) ** alpha

(* Row q of the triangle holds the q pairs (p, q), p < q, at indices
   [q(q-1)/2, q(q+1)/2) — every pair in a row costs the same, so a
   window's cost is a sum over the rows it intersects, not the pairs. *)
let window_cost model lo hi =
  if hi <= lo then 0.
  else
    match model with
    | Uniform -> float_of_int (hi - lo)
    | Power _ ->
        let _, q_lo = Efgame.Witness.pair_of_index lo in
        let _, q_hi = Efgame.Witness.pair_of_index (hi - 1) in
        let acc = ref 0. in
        for q = q_lo to q_hi do
          let row_lo = q * (q - 1) / 2 and row_hi = q * (q + 1) / 2 in
          let n = min hi row_hi - max lo row_lo in
          if n > 0 then acc := !acc +. (float_of_int n *. pair_cost model q)
        done;
        !acc

(* Equal-cost tiling: interior cut i lands on the smallest index whose
   prefix cost reaches i/shards of the total, nudged to keep every
   window nonempty. The wandering is bounded: cuts are monotone in the
   target, and the final clamp pass only fires when shards outnumber
   the cheap prefix's pairs. *)
let tile ~model ~max_n ~shards =
  if max_n < 1 then invalid_arg "Cost.tile: max_n < 1";
  if shards < 1 then invalid_arg "Cost.tile: shards < 1";
  let total = max_n * (max_n + 1) / 2 in
  let shards = min shards total in
  match model with
  | Uniform ->
      let size = (total + shards - 1) / shards in
      Array.init shards (fun i ->
          (min total (i * size), min total ((i + 1) * size)))
  | Power _ ->
      let total_cost = window_cost model 0 total in
      let prefix t = window_cost model 0 t in
      let cut_for target =
        (* smallest t with prefix t >= target, by bisection *)
        let lo = ref 0 and hi = ref total in
        while !hi - !lo > 0 do
          let mid = !lo + ((!hi - !lo) / 2) in
          if prefix mid >= target then hi := mid else lo := mid + 1
        done;
        !lo
      in
      let cuts = Array.make (shards + 1) 0 in
      cuts.(shards) <- total;
      for i = 1 to shards - 1 do
        let target =
          total_cost *. float_of_int i /. float_of_int shards
        in
        cuts.(i) <- cut_for target
      done;
      (* nonempty windows: push right over any duplicates, then pull the
         tail back if the push overran the end *)
      for i = 1 to shards - 1 do
        if cuts.(i) <= cuts.(i - 1) then cuts.(i) <- cuts.(i - 1) + 1
      done;
      for i = shards - 1 downto 1 do
        if cuts.(i) >= cuts.(i + 1) then cuts.(i) <- cuts.(i + 1) - 1
      done;
      Array.init shards (fun i -> (cuts.(i), cuts.(i + 1)))

type sample = { s_lo : int; s_hi : int; s_wall : float }

let calibrate ?(fallback = Power default_alpha) samples =
  let usable =
    List.filter
      (fun s -> s.s_hi > s.s_lo && Float.is_finite s.s_wall && s.s_wall > 0.)
      samples
  in
  if List.length usable < 2 then fallback
  else begin
    (* grid search over alpha: scale-free least squares on the log
       residuals (the per-pair constant is the free intercept). A 0.05
       grid over [0, 4] beats gradient descent here: deterministic,
       derivative-free, and finer than the tiling can distinguish. *)
    let score model =
      let rs =
        List.map
          (fun s -> log s.s_wall -. log (window_cost model s.s_lo s.s_hi))
          usable
      in
      let n = float_of_int (List.length rs) in
      let mean = List.fold_left ( +. ) 0. rs /. n in
      List.fold_left (fun a r -> a +. ((r -. mean) *. (r -. mean))) 0. rs
    in
    let best = ref (score fallback, fallback) in
    for i = 0 to 80 do
      let m = Power (float_of_int i *. 0.05) in
      let s = score m in
      if s < fst !best -. 1e-12 then best := (s, m)
    done;
    snd !best
  end
