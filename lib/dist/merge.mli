(** Merge certified shard tables into one frontier table, quarantining
    what cannot be trusted instead of aborting or silently merging
    garbage.

    Each Done shard is re-verified on the way in: the completion
    record's checksum must match the table file, and the table must pass
    strict {!Efgame.Persist.load} validation. A table that fails strict
    validation but salvages at least [salvage_threshold] of its
    certified entries is merged from the valid subset (sound, because
    the merge is monotone — it just weakens coverage); anything worse is
    quarantined with a reason. One corrupt shard never aborts the merge
    of the others.

    The proven bound [(k, max_n)] is stamped on the output table only
    when {e every} shard merged strictly clean with an Exhausted
    outcome — the union of windows then provably covers the triangle.
    Any Found, Missing, Salvaged, or Quarantined shard withholds it. *)

type shard_status =
  | Merged of Efgame.Persist.report
  | Salvaged of Efgame.Persist.report * int
      (** report, plus the certified entry count it fell short of *)
  | Quarantined of string
  | Missing  (** not Done yet — the merge is partial *)

type t = {
  entries : int;  (** entries in the merged output table *)
  merged : int;
  salvaged : int;
  quarantined : int;
  missing : int;
  bound : (int * int) option;  (** stamped on the output when proven *)
  found : (int * int) option;  (** minimal witness pair across shards *)
  per_shard : (int * shard_status) list;
}

val complete : t -> bool
(** No shard Missing or Quarantined. *)

val blend : into:Efgame.Cache.t -> Efgame.Cache.t -> unit
(** Fold every exact verdict of the second cache into [into] — the
    monotone entry-by-entry merge used for salvaged subsets here and
    for sub-window caches in {!Heal}. *)

val merge :
  ?salvage_threshold:float ->
  ?fsync:bool ->
  dir:string ->
  out:string ->
  unit ->
  (t, string) result
(** Merge every mergeable shard of [dir] into a fresh table at [out]
    (save retried with backoff). [salvage_threshold] defaults to 0.5.
    [Error] only on a bad manifest or an unwritable output. *)
