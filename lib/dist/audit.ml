(* Spot-audit of a merged frontier table: re-solve a seeded
   deterministic sample of pairs from scratch and compare against the
   verdicts the table records.

   The persistence layer's checksums defend against bad disks; this
   defends against bad *computation* — a miscompiled worker, a host
   with flaky RAM that corrupted verdicts before they were checksummed,
   a tampered shard table re-checksummed to look clean. Any exact
   verdict in the table that a fresh solve contradicts is a mismatch,
   and one mismatch means the table cannot be trusted (the monotone
   merge can drop entries, never alter them, so a wrong entry was wrong
   at birth).

   Sampling is SplitMix64 over the caller's seed, so an audit is
   reproducible by seed and two auditors with the same seed check the
   same pairs. Pairs the table has no verdict for are counted [absent],
   not failed: a shard that early-exited on a Found witness legitimately
   leaves its tail unscanned. *)

let m_checked = Obs.Metrics.counter "dist.audit_checked"
let m_mismatches = Obs.Metrics.counter "dist.audit_mismatches"

type mismatch = {
  p : int;
  q : int;
  table : bool;  (** the merged table's verdict: equivalent? *)
  fresh : Efgame.Game.verdict;  (** the independent re-solve *)
}

type t = {
  sample : int;  (** pairs drawn *)
  checked : int;  (** drawn pairs with a table verdict to check *)
  absent : int;  (** drawn pairs the table holds no verdict for *)
  unknown : int;  (** re-solves that exhausted their budget *)
  mismatches : mismatch list;
}

let passed t = t.mismatches = []

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let sample_indices ~seed ~total n =
  let state = ref (Int64.of_int seed) in
  List.init n (fun _ ->
      Int64.to_int
        (Int64.rem
           (Int64.logand (splitmix64 state) 0x3FFFFFFFFFFFFFFFL)
           (Int64.of_int total)))

let audit ?(seed = 1) ?budget ?(sample = 64) ?(salvage = false) ~dir ~table ()
    =
  match Manifest.load ~dir with
  | Error msg -> Error msg
  | Ok m ->
      let merged = Efgame.Cache.create () in
      (match Efgame.Persist.load ~salvage merged table with
      | Error e -> Error (Format.asprintf "%s: %a" table Efgame.Persist.pp_error e)
      | Ok _ ->
          (* the re-solver's cache warms only from its own solves — its
             verdicts never touch the table under audit *)
          let solver = Efgame.Cache.create () in
          let engine = Efgame.Witness.Cached solver in
          let k = m.Manifest.k in
          let step acc t =
            let p, q = Efgame.Witness.pair_of_index t in
            match Efgame.Witness.table_verdict merged ~k p q with
            | None -> { acc with absent = acc.absent + 1 }
            | Some table_eq -> (
                Obs.Metrics.incr m_checked;
                match Efgame.Witness.verify_pair ?budget ~engine ~k p q with
                | Efgame.Game.Unknown -> { acc with unknown = acc.unknown + 1 }
                | fresh ->
                    let agree =
                      match fresh with
                      | Efgame.Game.Equiv -> table_eq
                      | Efgame.Game.Not_equiv -> not table_eq
                      | Efgame.Game.Unknown -> assert false
                    in
                    if agree then { acc with checked = acc.checked + 1 }
                    else begin
                      Obs.Metrics.incr m_mismatches;
                      Obs.Log.err ~tag:"dist"
                        "audit mismatch on (%d, %d): table says %s, re-solve \
                         says %s"
                        p q
                        (if table_eq then "equivalent" else "not equivalent")
                        (Format.asprintf "%a" Efgame.Game.pp_verdict fresh);
                      {
                        acc with
                        checked = acc.checked + 1;
                        mismatches =
                          { p; q; table = table_eq; fresh } :: acc.mismatches;
                      }
                    end)
          in
          let init =
            { sample; checked = 0; absent = 0; unknown = 0; mismatches = [] }
          in
          let result =
            List.fold_left step init
              (sample_indices ~seed ~total:m.Manifest.total sample)
          in
          Ok { result with mismatches = List.rev result.mismatches })
