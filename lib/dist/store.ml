(* The storage interface behind every lib/dist filesystem touch.

   This module is the single place in lib/dist allowed to call Unix/Sys
   file primitives (CI greps the rest of the directory for strays). The
   [posix] store is the local filesystem at zero overhead; [chaos]
   wraps any store in seeded, deterministic hostility so the lease
   protocol can be soaked under NFS-like semantics — coarse mtimes,
   skewed clocks, renames that other handles see late, creates whose
   outcome the caller never learns, and a background drizzle of
   transient I/O errors drawn from Rt.Fault streams.

   Soundness note: chaos never fakes success. An injected failure
   either prevents the underlying operation (clean fault) or hides a
   real success behind an ambiguous [Io] (torn create) — both are
   things real storage does. The one simulation liberty is delayed
   visibility, which reports a real file [Absent]; that only ever makes
   the protocol MORE conservative (a claim retries, a reclaim waits),
   never less. *)

type error = Absent | Exists | Io of string

let error_message = function
  | Absent -> "no such file"
  | Exists -> "already exists"
  | Io msg -> msg

type bounds = {
  mtime_granularity_s : float;
  clock_skew_s : float;
  rename_visibility_s : float;
}

type t = {
  label : string;
  bounds : bounds;
  now : unit -> float;
  put_atomic : ?fsync:bool -> string -> string -> (unit, error) result;
  create_excl : string -> string -> (unit, error) result;
  read : string -> (string, error) result;
  list : string -> (string array, error) result;
  delete : string -> (unit, error) result;
  rename : src:string -> dst:string -> (unit, error) result;
  touch : string -> (unit, error) result;
  mtime : string -> (float, error) result;
  exists : string -> bool;
  mkdir : string -> (unit, error) result;
}

(* ------------------------------------------------------------- posix *)

let io_of_unix e fn = Io (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let posix_read path =
  match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Error Absent
  | exception Unix.Unix_error (e, fn, _) -> Error (io_of_unix e fn)
  | fd -> (
      let ic = Unix.in_channel_of_descr fd in
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> In_channel.input_all ic)
      with
      | data -> Ok data
      | exception Sys_error msg -> Error (Io msg))

let posix_put ?(fsync = true) path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc data;
        flush oc;
        if fsync then Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      cleanup ();
      Error (Io msg)
  | exception Unix.Unix_error (e, fn, _) ->
      cleanup ();
      Error (io_of_unix e fn)

let posix_create_excl path content =
  match
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL; Unix.O_CLOEXEC ]
      0o644
  with
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Error Exists
  | exception Unix.Unix_error (e, fn, _) -> Error (io_of_unix e fn)
  | fd -> (
      match
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let b = Bytes.of_string content in
            ignore (Unix.write fd b 0 (Bytes.length b)))
      with
      | () -> Ok ()
      | exception Unix.Unix_error (e, fn, _) -> Error (io_of_unix e fn))

let posix_list dir =
  match Sys.readdir dir with
  | names ->
      Array.sort compare names;
      Ok names
  | exception Sys_error msg ->
      if Sys.file_exists dir then Error (Io msg) else Error Absent

let posix_delete path =
  match Unix.unlink path with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Error Absent
  | exception Unix.Unix_error (e, fn, _) -> Error (io_of_unix e fn)

let posix_rename ~src ~dst =
  match Unix.rename src dst with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Error Absent
  | exception Unix.Unix_error (e, fn, _) -> Error (io_of_unix e fn)

(* utimes 0. 0. is the documented "set both times to now" special case *)
let posix_touch path =
  match Unix.utimes path 0. 0. with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Error Absent
  | exception Unix.Unix_error (e, fn, _) -> Error (io_of_unix e fn)

let posix_mtime path =
  match Unix.stat path with
  | st -> Ok st.Unix.st_mtime
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Error Absent
  | exception Unix.Unix_error (e, fn, _) -> Error (io_of_unix e fn)

let posix_mkdir dir =
  match Unix.mkdir dir 0o755 with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
  | exception Unix.Unix_error (e, fn, _) -> Error (io_of_unix e fn)

let posix =
  {
    label = "posix";
    bounds =
      { mtime_granularity_s = 0.; clock_skew_s = 0.; rename_visibility_s = 0. };
    now = Unix.gettimeofday;
    put_atomic = posix_put;
    create_excl = posix_create_excl;
    read = posix_read;
    list = posix_list;
    delete = posix_delete;
    rename = posix_rename;
    touch = posix_touch;
    mtime = posix_mtime;
    exists = Sys.file_exists;
    mkdir = posix_mkdir;
  }

(* --------------------------------------------------- protocol margins *)

let stale_margin t = t.bounds.mtime_granularity_s +. t.bounds.clock_skew_s

let reclaim_grace t ~ttl =
  Float.max
    (t.bounds.rename_visibility_s +. t.bounds.mtime_granularity_s)
    (Float.min (ttl /. 4.) 1.0)

(* ------------------------------------------------------------- chaos *)

type profile = {
  p_name : string;
  p_mtime_granularity_s : float;
  p_clock_skew_s : float;
  p_visibility_s : float;
  p_fault_rate : float;
  p_torn_rate : float;
}

let profiles =
  [
    ( "nfs-coarse",
      {
        p_name = "nfs-coarse";
        p_mtime_granularity_s = 1.0;
        p_clock_skew_s = 1.5;
        p_visibility_s = 0.4;
        p_fault_rate = 0.02;
        p_torn_rate = 0.02;
      } );
    ( "flaky-io",
      {
        p_name = "flaky-io";
        p_mtime_granularity_s = 0.;
        p_clock_skew_s = 0.;
        p_visibility_s = 0.;
        p_fault_rate = 0.10;
        p_torn_rate = 0.05;
      } );
    ( "skewed-clock",
      {
        p_name = "skewed-clock";
        p_mtime_granularity_s = 2.0;
        p_clock_skew_s = 3.0;
        p_visibility_s = 0.;
        p_fault_rate = 0.;
        p_torn_rate = 0.;
      } );
    ( "none",
      {
        p_name = "none";
        p_mtime_granularity_s = 0.;
        p_clock_skew_s = 0.;
        p_visibility_s = 0.;
        p_fault_rate = 0.;
        p_torn_rate = 0.;
      } );
  ]

let profile name =
  match List.assoc_opt name profiles with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown chaos profile %S (have: %s)" name
           (String.concat ", " (List.map fst profiles)))

let m_injected = Obs.Metrics.counter "store.chaos_injected"

let chaos ?(seed = 0) p base =
  let pid = Unix.getpid () in
  let fault = Rt.Fault.stream ~name:"store.fault" ~seed ~rate:p.p_fault_rate in
  let torn = Rt.Fault.stream ~name:"store.torn" ~seed ~rate:p.p_torn_rate in
  let flicker =
    (* half of the reads inside the visibility window miss — the window
       itself bounds the damage, the rate just makes it intermittent *)
    Rt.Fault.stream ~name:"store.flicker" ~seed ~rate:0.5
  in
  (* per-process clock skew, fixed for the process lifetime: mixing the
     pid in means each fleet member disagrees differently, like real
     unsynchronized hosts *)
  let skew =
    if p.p_clock_skew_s <= 0. then 0.
    else
      let s = Rt.Fault.stream ~name:"store.skew" ~seed:(seed lxor (pid * 0x9E3779B1)) ~rate:0. in
      ((2. *. Rt.Fault.uniform s) -. 1.) *. p.p_clock_skew_s
  in
  let errno = Atomic.make 0 in
  let injected op =
    Obs.Metrics.incr m_injected;
    let which =
      match Atomic.fetch_and_add errno 1 mod 3 with
      | 0 -> "EIO"
      | 1 -> "ENOSPC"
      | _ -> "EINTR"
    in
    Io (Printf.sprintf "%s: injected %s (chaos %s)" op which p.p_name)
  in
  (* You always see your own writes (close-to-open consistency); only
     other handles' fresh files flicker. *)
  let written : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let wmu = Mutex.create () in
  let mark path = Mutex.protect wmu (fun () -> Hashtbl.replace written path ()) in
  let unmark path = Mutex.protect wmu (fun () -> Hashtbl.remove written path) in
  let ours path = Mutex.protect wmu (fun () -> Hashtbl.mem written path) in
  let coarsen m =
    if p.p_mtime_granularity_s <= 0. then m
    else Float.of_int (int_of_float (m /. p.p_mtime_granularity_s))
         *. p.p_mtime_granularity_s
  in
  let flickers path =
    p.p_visibility_s > 0.
    && (not (ours path))
    && (match base.mtime path with
       | Ok m -> base.now () -. m < p.p_visibility_s
       | Error _ -> false)
    && Rt.Fault.trips flicker
  in
  {
    label = Printf.sprintf "chaos:%s over %s" p.p_name base.label;
    bounds =
      {
        mtime_granularity_s =
          Float.max base.bounds.mtime_granularity_s p.p_mtime_granularity_s;
        clock_skew_s = base.bounds.clock_skew_s +. p.p_clock_skew_s;
        rename_visibility_s =
          base.bounds.rename_visibility_s +. p.p_visibility_s;
      };
    now = (fun () -> base.now () +. skew);
    put_atomic =
      (fun ?fsync path data ->
        if Rt.Fault.trips fault then Error (injected "put_atomic")
        else
          match base.put_atomic ?fsync path data with
          | Ok () ->
              mark path;
              Ok ()
          | Error _ as e -> e);
    create_excl =
      (fun path content ->
        if Rt.Fault.trips fault then Error (injected "create_excl")
        else
          match base.create_excl path content with
          | Ok () ->
              mark path;
              if Rt.Fault.trips torn then
                Error
                  (Io
                     (Printf.sprintf
                        "create_excl: outcome unknown (chaos %s torn create)"
                        p.p_name))
              else Ok ()
          | Error _ as e -> e);
    read =
      (fun path ->
        if flickers path then Error Absent
        else if Rt.Fault.trips fault then Error (injected "read")
        else base.read path);
    list =
      (fun dir ->
        if Rt.Fault.trips fault then Error (injected "list")
        else base.list dir);
    delete =
      (fun path ->
        if Rt.Fault.trips fault then Error (injected "delete")
        else
          match base.delete path with
          | Ok () ->
              unmark path;
              Ok ()
          | Error _ as e -> e);
    rename =
      (fun ~src ~dst ->
        if Rt.Fault.trips fault then Error (injected "rename")
        else
          match base.rename ~src ~dst with
          | Ok () ->
              mark dst;
              Ok ()
          | Error _ as e -> e);
    touch =
      (fun path ->
        if Rt.Fault.trips fault then Error (injected "touch")
        else base.touch path);
    mtime =
      (fun path ->
        if flickers path then Error Absent
        else Result.map coarsen (base.mtime path));
    exists = (fun path -> if flickers path then false else base.exists path);
    mkdir = base.mkdir;
  }

(* ------------------------------------------------------ active store *)

let active_store = Atomic.make posix
let active () = Atomic.get active_store
let use t = Atomic.set active_store t

let of_spec spec =
  if spec = "posix" then Ok posix
  else
    let name, seed =
      match String.index_opt spec ':' with
      | None -> (spec, Ok 0)
      | Some i -> (
          let s = String.sub spec (i + 1) (String.length spec - i - 1) in
          ( String.sub spec 0 i,
            match int_of_string_opt s with
            | Some n -> Ok n
            | None -> Error (Printf.sprintf "bad chaos seed %S" s) ))
    in
    match (profile name, seed) with
    | Error msg, _ | _, Error msg ->
        Error (Printf.sprintf "bad chaos spec %S: %s (want PROFILE[:SEED])" spec msg)
    | Ok p, Ok seed -> Ok (chaos ~seed p posix)

let setup ?spec () =
  let spec =
    match spec with Some _ -> spec | None -> Sys.getenv_opt "EFGAME_CHAOS"
  in
  match spec with
  | None -> Ok ()
  | Some spec -> (
      match of_spec spec with
      | Ok t ->
          use t;
          Ok ()
      | Error _ as e -> e)
