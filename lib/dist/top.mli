(** Fleet aggregation for [efgame_cli shard top]: merge every worker's
    heartbeat snapshot with the manifest's derived shard states into
    one live view.

    {!aggregate} is pure (the clock is a parameter): the fleet row is,
    by construction, the field-wise sum of the worker snapshots — the
    property the qcheck test pins down. Tolerance to missing/corrupt/
    stale snapshots lives in {!Heartbeat.list} (skip + warn) and in the
    [fresh] flag here (a stale worker's rate is excluded from fleet
    throughput and the ETA, but its counters still count: its completed
    work is real). *)

type worker_row = {
  hb : Heartbeat.view;
  age : float;  (** [now] minus the snapshot's own publish time *)
  fresh : bool;  (** [age <= stale_after] *)
  rate : float;  (** pairs/s over the worker's uptime *)
  share : float;  (** of fleet pairs; 0 when the fleet is at 0 *)
}

type t = {
  now : float;
  workers : worker_row list;  (** sorted by owner *)
  fleet_pairs : int;
  fleet_completed : int;
  fleet_claimed : int;
  fleet_reclaimed : int;
  fleet_abandoned : int;
  fleet_requeued : int;
  fleet_quarantined : int;
  fleet_cache_hits : int;
  fleet_cache_misses : int;
  fleet_faults : int;
  fleet_retries : int;
  rate : float;  (** Σ rate over fresh workers *)
  shards_pending : int;
  shards_leased : int;
  shards_done : int;
  shards_quarantined : int;
  total_pairs : int;
  done_pairs : int;
  remaining_pairs : int;  (** windows still Pending or Leased *)
  eta_s : float option;  (** [remaining_pairs / rate]; [None] at 0 *)
}

val default_stale_after : float
(** 10 s — five default heartbeat intervals. *)

val aggregate :
  now:float ->
  ?stale_after:float ->
  ?states:(Manifest.shard * Manifest.state) list ->
  Heartbeat.view list ->
  t

val write_json : ?warnings:string list -> t -> Obs.Jsonw.t -> unit
(** The [efgame-top/1] document: [fleet] (sums + rate + ETA), [shards],
    per-worker rows, and the skip warnings. *)

val render : ?warnings:string list -> t -> string
(** Human-readable multi-line rendering for the watch loop. *)
