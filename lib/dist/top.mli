(** Fleet aggregation for [efgame_cli shard top]: merge every worker's
    heartbeat snapshot with the manifest's derived shard states into
    one live view.

    {!aggregate} is pure (the clock is a parameter): the fleet row is,
    by construction, the field-wise sum of the worker snapshots — the
    property the qcheck test pins down. Tolerance to missing/corrupt/
    stale snapshots lives in {!Heartbeat.list} (skip + warn) and in the
    [fresh] flag here (a stale worker's rate is excluded from fleet
    throughput and the ETA, but its counters still count: its completed
    work is real). *)

type worker_row = {
  hb : Heartbeat.view;
  age : float;
      (** [now] minus the store-observed file mtime when known, else
          minus the snapshot's self-reported publish time — staleness
          is judged by what the shared directory shows, so a worker
          with a skewed clock is not mis-classified *)
  fresh : bool;  (** [age <= stale_after] *)
  skew_s : float option;
      (** publisher clock minus store mtime, when the mtime is known *)
  skewed : bool;  (** [|skew_s| > skew_margin] — flagged, not stale *)
  rate : float;  (** pairs/s over the worker's uptime *)
  cost_rate : float;  (** model-cost units/s (0 under Uniform) *)
  share : float;  (** of fleet pairs; 0 when the fleet is at 0 *)
  straggler : bool;
      (** fresh, holding a shard, and progressing at a rate below the
          fleet's robust median by more than
          [max(3 MAD-sigmas, 25% of median)] — needs at least three
          fresh shard-holding workers, so a two-worker fleet where one
          is simply slower is never flagged. Cost rates are compared
          under a [Power] model (pair rates legitimately diverge when
          windows are equal-cost), pair rates under [Uniform]. *)
}

type t = {
  now : float;
  workers : worker_row list;  (** sorted by owner *)
  fleet_pairs : int;
  fleet_completed : int;
  fleet_claimed : int;
  fleet_reclaimed : int;
  fleet_abandoned : int;
  fleet_requeued : int;
  fleet_quarantined : int;
  fleet_cache_hits : int;
  fleet_cache_misses : int;
  fleet_faults : int;
  fleet_retries : int;
  rate : float;  (** Σ rate over fresh workers *)
  shards_pending : int;
  shards_leased : int;
  shards_done : int;
  shards_quarantined : int;
  total_pairs : int;
  done_pairs : int;
  remaining_pairs : int;  (** windows still Pending or Leased *)
  total_cost : float;  (** Σ model window costs over every shard *)
  done_cost : float;
  remaining_cost : float;
  eta_s : float option;
      (** remaining model cost over the fleet's cost rate when the
          model prices work unevenly and workers report cost progress;
          else [remaining_pairs / rate]; [None] when either is 0 *)
  eta_basis : string;  (** ["cost"] or ["pairs"] *)
  stragglers : int list;
      (** shard ids currently held by straggling workers — the
          speculation candidates, sorted and deduplicated *)
}

val default_stale_after : float
(** 10 s — five default heartbeat intervals. *)

val default_skew_margin : float
(** 2 s — |publisher clock − store mtime| beyond this flags the worker
    as clock-skewed. Callers running under a chaos store should widen
    it to at least {!Store.stale_margin}. *)

val aggregate :
  now:float ->
  ?stale_after:float ->
  ?skew_margin:float ->
  ?model:Cost.model ->
  ?states:(Manifest.shard * Manifest.state) list ->
  Heartbeat.observed list ->
  t
(** [model] (default [Uniform]) prices the outstanding windows for the
    cost-based ETA and switches straggler detection to cost rates;
    pass the manifest's model. *)

val write_json : ?warnings:string list -> t -> Obs.Jsonw.t -> unit
(** The [efgame-top/2] document: [fleet] (sums + rate + ETA + basis),
    [shards] (counts, pair and cost totals, straggler ids), per-worker
    rows (with [straggler] flags and speculation counters), and the
    skip warnings. Every [efgame-top/1] field is carried unchanged. *)

val render : ?warnings:string list -> t -> string
(** Human-readable multi-line rendering for the watch loop. *)
