(** Worker heartbeat snapshots ([efgame-heartbeat/1]).

    Each fleet worker publishes a small JSON file
    ([worker-<owner>-<hash>.hb]) in the shard directory from its
    telemetry tick thread: pairs done, cache hit rate, current lease,
    retry/fault counts, last-checkpoint age. The solve hot path only
    bumps the plain atomics in {!stats}; the tick thread turns them
    into a {!view} and writes it atomically (tmp+rename). The
    aggregator ([shard top]) reads every [.hb] file back, skipping
    corrupt or truncated ones with a warning — the [Merge] discipline
    applied to telemetry. *)

val schema : string

(** {1 Hot-path side} *)

(** Mutable per-worker counters, all plain atomics — safe to bump from
    any solver domain, read by the tick thread without locks.
    [current_shard] is [-1] between shards; [last_checkpoint_s] is
    seconds-since-epoch truncated to an int ([0] = never). *)
type stats = {
  owner : string;
  started : float;
  pairs : int Atomic.t;
  completed : int Atomic.t;
  claimed : int Atomic.t;
  reclaimed : int Atomic.t;
  abandoned : int Atomic.t;
  requeued : int Atomic.t;
  quarantined : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  faults : int Atomic.t;
  retries : int Atomic.t;
  current_shard : int Atomic.t;
  last_checkpoint_s : int Atomic.t;
  cost_done : int Atomic.t;
      (** model-cost units completed, truncated (0 under Uniform) *)
  speculated : int Atomic.t;  (** speculative re-executions started *)
  spec_wins : int Atomic.t;  (** speculative records that landed first *)
}

val make_stats : owner:string -> stats

(** {1 Published view} *)

type view = {
  v_owner : string;
  v_pid : int;
  v_host : string;
  v_started : float;
  v_now : float;  (** publisher's clock at write time *)
  v_seq : int;
  v_pairs : int;
  v_completed : int;
  v_claimed : int;
  v_reclaimed : int;
  v_abandoned : int;
  v_requeued : int;
  v_quarantined : int;
  v_cache_hits : int;
  v_cache_misses : int;
  v_faults : int;
  v_retries : int;
  v_current_shard : int option;
  v_last_checkpoint : float option;
  v_cost_done : int;  (** additive field — readers default it to 0 *)
  v_speculated : int;
  v_spec_wins : int;
}

val view_of_stats : ?now:float -> seq:int -> stats -> view

val uptime : view -> float
val cache_hit_rate : view -> float
val pairs_per_s : view -> float
val checkpoint_age : view -> float option

(** The heartbeat file path for [owner] under [dir] (sanitized name
    plus a short owner hash, so distinct owners never collide). *)
val path : dir:string -> owner:string -> string

(** Atomically write the view's heartbeat file through the active
    {!Store}. Degrades gracefully: a failed publish (ENOSPC, EIO,
    injected chaos) bumps the [dist.heartbeat_publish_failures] counter
    and logs once at WARN, then stays quiet until the next success logs
    the recovery — telemetry never crashes the tick thread or the
    worker. *)
val publish : dir:string -> view -> unit

(** {1 Reading} *)

val of_json : Obs.Jsonr.t -> (view, string) result
val load : string -> (view, string) result

type observed = { ob_view : view; ob_mtime : float option }
(** A readable heartbeat plus the store-observed mtime of its file —
    the aggregator judges staleness against the mtime (what the shared
    directory shows) and uses the gap to the publisher's own [v_now]
    to flag clock skew. *)

(** All readable heartbeats under [dir] (sorted by file name), plus one
    warning per skipped unreadable/corrupt file. Never raises. *)
val list : dir:string -> observed list * string list
