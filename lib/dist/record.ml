(* Shard completion records: the small text file a worker publishes
   after its shard table is written and validated. The record is what
   promotes a shard to Done, and it carries the FNV of the table file
   it certifies, so the merge can detect a table that was replaced or
   damaged after certification (the record and the table are two files;
   the checksum ties them together).

   With speculative re-execution (see {!Worker}) a shard can have two
   racing certifiers — the primary lease holder and a speculator — so
   the record write is an {e exclusive create}: of N racers exactly one
   record lands, and that record names (in its [table] field) which
   table file it certifies, so a record can never certify bytes its
   loser wrote. The loser reads the winner's record back and discards
   its own output — by content hash the two tables are identical anyway
   (deterministic scans), which the loser verifies and logs. [replace]
   is for {!Heal}, which re-certifies a repaired shard under a
   quarantine it is about to clear; nothing else overwrites a record. *)

type outcome =
  | Exhausted  (** every pair in the window refuted *)
  | Found of int * int  (** minimal equivalent pair within the window *)

type t = {
  shard : int;
  owner : string;
  outcome : outcome;
  entries : int;  (** entries in the certified table *)
  table_fnv : int64;  (** FNV-1a64 of the table file's bytes *)
  table : string option;
      (** basename of the certified table when it is not the shard's
          default [shard-NNNN.tbl] (a speculator's [.spec.tbl]) *)
  wall_ns : int64 option;  (** wall time the certifying scan took *)
}

let file_fnv path =
  match (Store.active ()).Store.read path with
  | Ok data -> Ok (Manifest.fnv1a64 data)
  | Error e -> Error (path ^ ": " ^ Store.error_message e)

let table_file ~dir r =
  match r.table with
  | None -> Manifest.table_path dir r.shard
  | Some name -> Filename.concat dir name

let to_string r =
  let outcome =
    match r.outcome with
    | Exhausted -> "exhausted"
    | Found (p, q) -> Printf.sprintf "found %d %d" p q
  in
  Printf.sprintf
    "efgame-shard-done 1\nshard %d\nowner %s\noutcome %s\nentries %d\ntable_fnv %Lx\n%s%s"
    r.shard r.owner outcome r.entries r.table_fnv
    (match r.table with
    | Some name -> Printf.sprintf "table %s\n" name
    | None -> "")
    (match r.wall_ns with
    | Some ns -> Printf.sprintf "wall_ns %Ld\n" ns
    | None -> "")

let read ~dir id =
  let path = Manifest.done_path dir id in
  match (Store.active ()).Store.read path with
  | Error e -> Error (path ^ ": " ^ Store.error_message e)
  | Ok data -> (
      let fields =
        String.split_on_char '\n' data
        |> List.filter_map (fun l ->
               match String.index_opt l ' ' with
               | Some i ->
                   Some
                     ( String.sub l 0 i,
                       String.sub l (i + 1) (String.length l - i - 1) )
               | None -> None)
      in
      let get k = List.assoc_opt k fields in
      let int k = Option.bind (get k) int_of_string_opt in
      match
        ( get "efgame-shard-done", int "shard", get "owner", get "outcome",
          int "entries",
          Option.bind (get "table_fnv") (fun h -> Int64.of_string_opt ("0x" ^ h))
        )
      with
      | Some "1", Some shard, Some owner, Some outcome, Some entries, Some fnv
        -> (
          let outcome =
            match String.split_on_char ' ' outcome with
            | [ "exhausted" ] -> Some Exhausted
            | [ "found"; p; q ] -> (
                match (int_of_string_opt p, int_of_string_opt q) with
                | Some p, Some q -> Some (Found (p, q))
                | _ -> None)
            | _ -> None
          in
          (* a table reference must stay inside the scan directory: a
             bare basename, nothing path-like *)
          let table_ok =
            match get "table" with
            | None -> true
            | Some name ->
                name <> "" && name <> ".." && name = Filename.basename name
          in
          match (outcome, table_ok) with
          | Some outcome, true ->
              Ok
                {
                  shard;
                  owner;
                  outcome;
                  entries;
                  table_fnv = fnv;
                  table = get "table";
                  wall_ns = Option.bind (get "wall_ns") Int64.of_string_opt;
                }
          | Some _, false -> Error (path ^ ": suspicious table reference")
          | None, _ -> Error (path ^ ": malformed outcome"))
      | _ -> Error (path ^ ": malformed completion record"))

let write ?(replace = false) ~dir r =
  let st = Store.active () in
  let path = Manifest.done_path dir r.shard in
  if replace then
    match st.Store.put_atomic path (to_string r) with
    | Ok () -> `Written
    | Error e -> `Error (Store.error_message e)
  else
    match st.Store.create_excl path (to_string r) with
    | Ok () -> `Written
    | Error Store.Exists ->
        (* someone certified this shard first — hand the winner's record
           back so the loser can dedup by content hash *)
        `Lost (Result.to_option (read ~dir r.shard))
    | Error e -> `Error (Store.error_message e)
