(* Shard completion records: the small text file a worker renames into
   place after its shard table is written and validated. The record is
   what promotes a shard to Done, and it carries the FNV of the table
   file it certifies, so the merge can detect a table that was replaced
   or damaged after certification (the record and the table are two
   files; the checksum ties them together). *)

type outcome =
  | Exhausted  (** every pair in the window refuted *)
  | Found of int * int  (** minimal equivalent pair within the window *)

type t = {
  shard : int;
  owner : string;
  outcome : outcome;
  entries : int;  (** entries in the certified table *)
  table_fnv : int64;  (** FNV-1a64 of the table file's bytes *)
}

let file_fnv path =
  match (Store.active ()).Store.read path with
  | Ok data -> Ok (Manifest.fnv1a64 data)
  | Error e -> Error (path ^ ": " ^ Store.error_message e)

let to_string r =
  let outcome =
    match r.outcome with
    | Exhausted -> "exhausted"
    | Found (p, q) -> Printf.sprintf "found %d %d" p q
  in
  Printf.sprintf
    "efgame-shard-done 1\nshard %d\nowner %s\noutcome %s\nentries %d\ntable_fnv %Lx\n"
    r.shard r.owner outcome r.entries r.table_fnv

let write ~dir r =
  match
    (Store.active ()).Store.put_atomic (Manifest.done_path dir r.shard)
      (to_string r)
  with
  | Ok () -> Ok ()
  | Error e -> Error (Store.error_message e)

let read ~dir id =
  let path = Manifest.done_path dir id in
  match (Store.active ()).Store.read path with
  | Error e -> Error (path ^ ": " ^ Store.error_message e)
  | Ok data -> (
      let fields =
        String.split_on_char '\n' data
        |> List.filter_map (fun l ->
               match String.index_opt l ' ' with
               | Some i ->
                   Some
                     ( String.sub l 0 i,
                       String.sub l (i + 1) (String.length l - i - 1) )
               | None -> None)
      in
      let get k = List.assoc_opt k fields in
      let int k = Option.bind (get k) int_of_string_opt in
      match
        ( get "efgame-shard-done", int "shard", get "owner", get "outcome",
          int "entries",
          Option.bind (get "table_fnv") (fun h -> Int64.of_string_opt ("0x" ^ h))
        )
      with
      | Some "1", Some shard, Some owner, Some outcome, Some entries, Some fnv
        -> (
          let outcome =
            match String.split_on_char ' ' outcome with
            | [ "exhausted" ] -> Some Exhausted
            | [ "found"; p; q ] -> (
                match (int_of_string_opt p, int_of_string_opt q) with
                | Some p, Some q -> Some (Found (p, q))
                | _ -> None)
            | _ -> None
          in
          match outcome with
          | Some outcome ->
              Ok { shard; owner; outcome; entries; table_fnv = fnv }
          | None -> Error (path ^ ": malformed outcome"))
      | _ -> Error (path ^ ": malformed completion record"))
