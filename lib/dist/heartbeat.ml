(* Worker heartbeat snapshots: each worker advertises its live state in
   a small JSON file next to the shards it works on, published by its
   telemetry tick thread (never the solve path — see DESIGN.md) with
   the usual tmp+rename atomicity.

   The mtime-based lease heartbeat answers "is this worker alive?"; the
   snapshot answers "what is it doing and how fast?". The two are
   deliberately independent: losing a heartbeat file (crash before the
   first tick, deleted by an operator) costs visibility, never
   correctness, and the aggregator treats an unreadable or stale
   snapshot exactly like [Merge] treats a corrupt shard — skip it,
   warn, and keep counting the others. *)

let schema = "efgame-heartbeat/1"
let suffix = ".hb"

(* Everything the worker's hot path updates, as plain atomics: the tick
   thread reads them at its leisure. Publishing never takes a lock the
   scan could be holding. *)
type stats = {
  owner : string;
  started : float;
  pairs : int Atomic.t;  (** pair verdicts, cumulative across shards *)
  completed : int Atomic.t;
  claimed : int Atomic.t;
  reclaimed : int Atomic.t;
  abandoned : int Atomic.t;
  requeued : int Atomic.t;
  quarantined : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  faults : int Atomic.t;
  retries : int Atomic.t;
  current_shard : int Atomic.t;  (** -1 = between shards *)
  (* seconds-since-epoch as an int: atomics over floats would box *)
  last_checkpoint_s : int Atomic.t;  (** 0 = never *)
  (* model-cost units completed, truncated to an int (atomics over
     floats would box); 0 when the manifest's model is Uniform *)
  cost_done : int Atomic.t;
  speculated : int Atomic.t;  (** speculative re-executions started *)
  spec_wins : int Atomic.t;  (** speculative records that landed first *)
}

let make_stats ~owner =
  {
    owner;
    started = (Store.active ()).Store.now ();
    pairs = Atomic.make 0;
    completed = Atomic.make 0;
    claimed = Atomic.make 0;
    reclaimed = Atomic.make 0;
    abandoned = Atomic.make 0;
    requeued = Atomic.make 0;
    quarantined = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    faults = Atomic.make 0;
    retries = Atomic.make 0;
    current_shard = Atomic.make (-1);
    last_checkpoint_s = Atomic.make 0;
    cost_done = Atomic.make 0;
    speculated = Atomic.make 0;
    spec_wins = Atomic.make 0;
  }

(* The published view: what a snapshot file contains, and what the
   aggregator consumes. [now] is the publisher's clock at write time —
   staleness is judged against it, not the file mtime, so a copied or
   archived directory still renders sensibly. *)
type view = {
  v_owner : string;
  v_pid : int;
  v_host : string;
  v_started : float;
  v_now : float;
  v_seq : int;
  v_pairs : int;
  v_completed : int;
  v_claimed : int;
  v_reclaimed : int;
  v_abandoned : int;
  v_requeued : int;
  v_quarantined : int;
  v_cache_hits : int;
  v_cache_misses : int;
  v_faults : int;
  v_retries : int;
  v_current_shard : int option;
  v_last_checkpoint : float option;
  v_cost_done : int;
  v_speculated : int;
  v_spec_wins : int;
}

let uptime v = v.v_now -. v.v_started

let cache_hit_rate v =
  let total = v.v_cache_hits + v.v_cache_misses in
  if total = 0 then 0. else float_of_int v.v_cache_hits /. float_of_int total

let pairs_per_s v =
  let up = uptime v in
  if up <= 0. then 0. else float_of_int v.v_pairs /. up

let checkpoint_age v =
  match v.v_last_checkpoint with
  | None -> None
  | Some t -> Some (Float.max 0. (v.v_now -. t))

(* Owner strings are host:pid:nonce — sanitize for the filesystem and
   append a short hash so distinct owners can't collide after
   sanitization. *)
let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    s

let path ~dir ~owner =
  let h = Int64.to_int (Manifest.fnv1a64 owner) land 0xffffff in
  Filename.concat dir (Printf.sprintf "worker-%s-%06x%s" (sanitize owner) h suffix)

let view_of_stats ?now ~seq s =
  let now =
    match now with Some n -> n | None -> (Store.active ()).Store.now ()
  in
  {
    v_owner = s.owner;
    v_pid = Unix.getpid ();
    v_host = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    v_started = s.started;
    v_now = now;
    v_seq = seq;
    v_pairs = Atomic.get s.pairs;
    v_completed = Atomic.get s.completed;
    v_claimed = Atomic.get s.claimed;
    v_reclaimed = Atomic.get s.reclaimed;
    v_abandoned = Atomic.get s.abandoned;
    v_requeued = Atomic.get s.requeued;
    v_quarantined = Atomic.get s.quarantined;
    v_cache_hits = Atomic.get s.cache_hits;
    v_cache_misses = Atomic.get s.cache_misses;
    v_faults = Atomic.get s.faults;
    v_retries = Atomic.get s.retries;
    v_current_shard =
      (match Atomic.get s.current_shard with -1 -> None | id -> Some id);
    v_last_checkpoint =
      (match Atomic.get s.last_checkpoint_s with
      | 0 -> None
      | t -> Some (float_of_int t));
    v_cost_done = Atomic.get s.cost_done;
    v_speculated = Atomic.get s.speculated;
    v_spec_wins = Atomic.get s.spec_wins;
  }

let write_view v w =
  let module J = Obs.Jsonw in
  J.obj w (fun w ->
      J.field_string w "schema" schema;
      J.field_string w "owner" v.v_owner;
      J.field_int w "pid" v.v_pid;
      J.field_string w "host" v.v_host;
      J.field_float ~prec:6 w "started_s" v.v_started;
      J.field_float ~prec:6 w "now_s" v.v_now;
      J.field_float ~prec:3 w "uptime_s" (uptime v);
      J.field_int w "seq" v.v_seq;
      J.field_int w "pairs" v.v_pairs;
      J.field_float ~prec:2 w "pairs_per_s" (pairs_per_s v);
      J.field_int w "completed" v.v_completed;
      J.field_int w "claimed" v.v_claimed;
      J.field_int w "reclaimed" v.v_reclaimed;
      J.field_int w "abandoned" v.v_abandoned;
      J.field_int w "requeued" v.v_requeued;
      J.field_int w "quarantined" v.v_quarantined;
      J.field_int w "cache_hits" v.v_cache_hits;
      J.field_int w "cache_misses" v.v_cache_misses;
      J.field_float ~prec:4 w "cache_hit_rate" (cache_hit_rate v);
      J.field_int w "faults" v.v_faults;
      J.field_int w "retries" v.v_retries;
      (* additive since the schema's first cut: readers default them to
         0, so old and new heartbeats interoperate in one directory *)
      J.field_int w "cost_done" v.v_cost_done;
      J.field_int w "speculated" v.v_speculated;
      J.field_int w "spec_wins" v.v_spec_wins;
      (match v.v_current_shard with
      | Some id -> J.field_int w "current_shard" id
      | None -> J.field_null w "current_shard");
      match checkpoint_age v with
      | Some age ->
          J.field_float ~prec:6 w "last_checkpoint_s"
            (Option.get v.v_last_checkpoint);
          J.field_float ~prec:3 w "last_checkpoint_age_s" age
      | None -> J.field_null w "last_checkpoint_s")

(* Publishing degrades gracefully under a hostile store: a failed
   write (ENOSPC, EIO, injected chaos) is counted and logged ONCE at
   WARN, then the ticker keeps ticking — the next successful publish
   logs the recovery. Telemetry must never crash the tick thread or
   cost the worker its shard. *)
let m_publish_failures = Obs.Metrics.counter "dist.heartbeat_publish_failures"
let publish_degraded = Atomic.make false

let publish ~dir v =
  let st = Store.active () in
  let w = Obs.Jsonw.create ~initial_size:1024 () in
  write_view v w;
  match
    st.Store.put_atomic ~fsync:false
      (path ~dir ~owner:v.v_owner)
      (Obs.Jsonw.contents w ^ "\n")
  with
  | Ok () ->
      if Atomic.exchange publish_degraded false then
        Obs.Log.info ~tag:"dist" "heartbeat publishing recovered"
  | Error e ->
      Obs.Metrics.incr m_publish_failures;
      if not (Atomic.exchange publish_degraded true) then
        Obs.Log.warn ~tag:"dist"
          "heartbeat publish failed (%s); continuing without telemetry \
           until the store recovers"
          (Store.error_message e)

(* ---------------------------------------------------------- reading *)

let opt_shard j =
  match Obs.Jsonr.member "current_shard" j with
  | Some (Obs.Jsonr.Num _ as n) -> Obs.Jsonr.to_int n
  | _ -> None

let of_json j =
  let module R = Obs.Jsonr in
  match
    ( R.mem_string "schema" j,
      R.mem_string "owner" j,
      R.mem_int "pid" j,
      R.mem_string "host" j,
      R.mem_float "started_s" j,
      R.mem_float "now_s" j )
  with
  | Some s, Some owner, Some pid, Some host, Some started, Some now
    when s = schema ->
      let i key = Option.value (R.mem_int key j) ~default:0 in
      Ok
        {
          v_owner = owner;
          v_pid = pid;
          v_host = host;
          v_started = started;
          v_now = now;
          v_seq = i "seq";
          v_pairs = i "pairs";
          v_completed = i "completed";
          v_claimed = i "claimed";
          v_reclaimed = i "reclaimed";
          v_abandoned = i "abandoned";
          v_requeued = i "requeued";
          v_quarantined = i "quarantined";
          v_cache_hits = i "cache_hits";
          v_cache_misses = i "cache_misses";
          v_faults = i "faults";
          v_retries = i "retries";
          v_current_shard = opt_shard j;
          v_last_checkpoint = R.mem_float "last_checkpoint_s" j;
          v_cost_done = i "cost_done";
          v_speculated = i "speculated";
          v_spec_wins = i "spec_wins";
        }
  | Some s, _, _, _, _, _ when s <> schema ->
      Error (Printf.sprintf "unsupported heartbeat schema %S" s)
  | _ -> Error "missing heartbeat fields"

let load file =
  match (Store.active ()).Store.read file with
  | Error e -> Error (file ^ ": " ^ Store.error_message e)
  | Ok data -> (
      match Obs.Jsonr.parse data with
      | Error msg -> Error (file ^ ": " ^ msg)
      | Ok j -> (
          match of_json j with
          | Ok v -> Ok v
          | Error msg -> Error (file ^ ": " ^ msg)))

(* Corrupt-tolerant sweep, the [Merge] discipline: a heartbeat that
   fails to read is a warning in the result, never an exception — one
   worker dying mid-publish (tmp+rename makes even that unlikely) must
   not blind the aggregator to the rest of the fleet.

   Each view comes back with the store-observed mtime of its file, so
   staleness can be judged against what the shared directory actually
   shows rather than trusting the publisher's own (possibly skewed)
   clock — a worker whose clock disagrees is then flagged as skewed by
   the aggregator instead of being mis-classified as stale or
   suspiciously fresh. *)
type observed = { ob_view : view; ob_mtime : float option }

let list ~dir =
  let st = Store.active () in
  match st.Store.list dir with
  | Error e -> ([], [ dir ^ ": " ^ Store.error_message e ])
  | Ok names ->
      Array.fold_left
        (fun (views, warnings) name ->
          if
            String.starts_with ~prefix:"worker-" name
            && Filename.check_suffix name suffix
          then
            let file = Filename.concat dir name in
            match load file with
            | Ok v ->
                let ob_mtime =
                  match st.Store.mtime file with
                  | Ok m -> Some m
                  | Error _ -> None
                in
                ({ ob_view = v; ob_mtime } :: views, warnings)
            | Error msg ->
                (views, Printf.sprintf "skipping heartbeat %s: %s" name msg :: warnings)
          else (views, warnings))
        ([], []) names
      |> fun (views, warnings) -> (List.rev views, List.rev warnings)
