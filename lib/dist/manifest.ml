(* The shard manifest: one immutable, checksummed file describing how a
   frontier scan was cut into triangle windows. Everything *mutable*
   about a scan — who holds which shard, which shards are finished or
   quarantined — is deliberately NOT in the manifest: per-shard state is
   derived from the presence of sibling files (lease / done / quarantine
   records), so there is no coordinator and no file that two workers
   ever need to update concurrently.

   Format (plain text, line-oriented, dependency-free):

     efgame-shard-manifest 2
     k 3
     max_n 96
     total 4656
     model power:2
     shard 0 0 582
     shard 1 582 1164
     ...
     checksum <fnv1a64 of every preceding byte, hex>

   Version 2 added the [model] line (the cost model the windows were
   tiled by — see {!Cost}); version 1 manifests, which are always
   equal-pair cuts, still load with [model = Uniform]. The checksum
   makes a torn or hand-edited manifest detectable; since the file is
   written once (tmp + rename) and never rewritten, that is the only
   integrity risk. *)

type shard = { id : int; lo : int; hi : int }

type t = {
  k : int;
  max_n : int;
  total : int;
  model : Cost.model;
  shards : shard array;
}

(* Per-shard lifecycle, derived from the filesystem (see {!state}). *)
type state = Pending | Leased | Done | Quarantined

let version = 2
let file_name = "manifest"

let path dir = Filename.concat dir file_name

let shard_base dir id = Filename.concat dir (Printf.sprintf "shard-%04d" id)
let table_path dir id = shard_base dir id ^ ".tbl"
let lease_path dir id = shard_base dir id ^ ".lease"
let done_path dir id = shard_base dir id ^ ".done"
let retries_path dir id = shard_base dir id ^ ".retries"
let quarantine_path dir id = shard_base dir id ^ ".quarantine"

(* Speculative re-execution (see {!Worker}) runs under a secondary
   lease and writes its table to a distinct file, so a speculator and
   the primary holder never race on the same bytes — only on the
   completion record, whose exclusive create is the single winner
   point. *)
let spec_lease_path dir id = shard_base dir id ^ ".spec.lease"
let spec_table_path dir id = shard_base dir id ^ ".spec.tbl"
let spec_table_name id = Printf.sprintf "shard-%04d.spec.tbl" id

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let create ?(model = Cost.Uniform) ~k ~max_n ~shards () =
  if k < 0 then invalid_arg "Manifest.create: negative k";
  if max_n < 1 then invalid_arg "Manifest.create: max_n < 1";
  if shards < 1 then invalid_arg "Manifest.create: shards < 1";
  let total = max_n * (max_n + 1) / 2 in
  let windows = Cost.tile ~model ~max_n ~shards in
  let arr = Array.mapi (fun i (lo, hi) -> { id = i; lo; hi }) windows in
  { k; max_n; total; model; shards = arr }

let body m =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "efgame-shard-manifest %d\n" version);
  Buffer.add_string b (Printf.sprintf "k %d\n" m.k);
  Buffer.add_string b (Printf.sprintf "max_n %d\n" m.max_n);
  Buffer.add_string b (Printf.sprintf "total %d\n" m.total);
  Buffer.add_string b (Printf.sprintf "model %s\n" (Cost.to_string m.model));
  Array.iter
    (fun s -> Buffer.add_string b (Printf.sprintf "shard %d %d %d\n" s.id s.lo s.hi))
    m.shards;
  Buffer.contents b

let save m ~dir =
  let st = Store.active () in
  let body = body m in
  let data = Printf.sprintf "%schecksum %Lx\n" body (fnv1a64 body) in
  let final = path dir in
  if st.Store.exists final then Error (final ^ ": manifest already exists")
  else
    match st.Store.put_atomic final data with
    | Ok () -> Ok ()
    | Error e -> Error (Store.error_message e)

let load ~dir =
  let file = path dir in
  match (Store.active ()).Store.read file with
  | Error e -> Error (file ^ ": " ^ Store.error_message e)
  | Ok data -> (
      (* split off the trailing checksum line and verify it covers the
         exact bytes it follows *)
      let check_prefix = "checksum " in
      match String.rindex_opt (String.sub data 0 (max 0 (String.length data - 1))) '\n' with
      | None -> Error (file ^ ": not a shard manifest")
      | Some nl -> (
          let body = String.sub data 0 (nl + 1) in
          let last = String.sub data (nl + 1) (String.length data - nl - 1) in
          let ok =
            String.length last > String.length check_prefix
            && String.sub last 0 (String.length check_prefix) = check_prefix
            &&
            let hex =
              String.trim
                (String.sub last (String.length check_prefix)
                   (String.length last - String.length check_prefix))
            in
            match Int64.of_string_opt ("0x" ^ hex) with
            | Some sum -> sum = fnv1a64 body
            | None -> false
          in
          if not ok then Error (file ^ ": manifest checksum mismatch")
          else
            let lines =
              String.split_on_char '\n' body
              |> List.filter (fun l -> String.trim l <> "")
            in
            let shards = ref [] in
            let k = ref (-1) and max_n = ref (-1) and total = ref (-1) in
            let ver = ref (-1) in
            let model = ref Cost.Uniform in
            let bad = ref None in
            List.iteri
              (fun i line ->
                match (i, String.split_on_char ' ' line) with
                | 0, [ "efgame-shard-manifest"; v ] -> (
                    (* v1 manifests (equal-pair cuts, no model line)
                       still load; anything newer than us does not *)
                    match int_of_string_opt v with
                    | Some n when n >= 1 && n <= version -> ver := n
                    | _ ->
                        bad :=
                          Some
                            (Printf.sprintf "unsupported manifest version %s" v))
                | _, [ "k"; v ] -> k := int_of_string v
                | _, [ "max_n"; v ] -> max_n := int_of_string v
                | _, [ "total"; v ] -> total := int_of_string v
                | _, [ "model"; v ] -> (
                    if !ver < 2 then
                      bad := Some "model line in a version 1 manifest"
                    else
                      match Cost.of_string v with
                      | Ok m -> model := m
                      | Error msg -> bad := Some msg)
                | _, [ "shard"; id; lo; hi ] ->
                    shards :=
                      { id = int_of_string id;
                        lo = int_of_string lo;
                        hi = int_of_string hi }
                      :: !shards
                | _ -> bad := Some (Printf.sprintf "unrecognized line %S" line))
              lines;
            match !bad with
            | Some msg -> Error (file ^ ": " ^ msg)
            | None ->
                let shards = Array.of_list (List.rev !shards) in
                if
                  !k < 0 || !max_n < 1
                  || !total <> !max_n * (!max_n + 1) / 2
                  || Array.length shards = 0
                  || not
                       (Array.for_all
                          (fun s ->
                            s.id >= 0 && 0 <= s.lo && s.lo <= s.hi
                            && s.hi <= !total)
                          shards)
                then Error (file ^ ": inconsistent manifest fields")
                else
                  Ok
                    {
                      k = !k;
                      max_n = !max_n;
                      total = !total;
                      model = !model;
                      shards;
                    }))

(* Lease freshness: heartbeats bump the lease file's mtime, so a lease
   older than the TTL belongs to a worker that died or wedged. Ages are
   store-observed — coarse mtimes and this process's clock skew are in
   the number, which is why staleness cuts at TTL plus the store's
   margin, not at the bare TTL. *)
let lease_age dir id =
  let st = Store.active () in
  match st.Store.mtime (lease_path dir id) with
  | Ok m -> Some (st.Store.now () -. m)
  | Error _ -> None

let state ~dir ~ttl s =
  let st = Store.active () in
  if st.Store.exists (quarantine_path dir s.id) then Quarantined
  else if st.Store.exists (done_path dir s.id) then Done
  else
    match lease_age dir s.id with
    | Some age when age <= ttl +. Store.stale_margin st -> Leased
    | Some _ | None -> Pending

type counts = {
  pending : int;
  leased : int;
  stale : int;  (** leased past the TTL — reclaimable, counted as pending work *)
  done_ : int;
  quarantined : int;
}

let counts ~dir ~ttl m =
  Array.fold_left
    (fun c s ->
      match state ~dir ~ttl s with
      | Quarantined -> { c with quarantined = c.quarantined + 1 }
      | Done -> { c with done_ = c.done_ + 1 }
      | Leased -> { c with leased = c.leased + 1 }
      | Pending ->
          if lease_age dir s.id <> None then
            { c with pending = c.pending + 1; stale = c.stale + 1 }
          else { c with pending = c.pending + 1 })
    { pending = 0; leased = 0; stale = 0; done_ = 0; quarantined = 0 }
    m.shards

let retries dir id =
  match (Store.active ()).Store.read (retries_path dir id) with
  | Ok data -> (
      match String.index_opt data '\n' with
      | Some i ->
          Option.value
            (int_of_string_opt (String.trim (String.sub data 0 i)))
            ~default:0
      | None -> Option.value (int_of_string_opt (String.trim data)) ~default:0)
  | Error _ -> 0

(* Last-writer-wins is fine here: the counter only gates how long a
   flaky shard keeps being retried, and only the lease holder bumps it. *)
let bump_retries dir id =
  let n = retries dir id + 1 in
  ignore
    ((Store.active ()).Store.put_atomic ~fsync:false (retries_path dir id)
       (string_of_int n ^ "\n"));
  n

let quarantine ~dir ~owner id reason =
  match
    (Store.active ()).Store.put_atomic (quarantine_path dir id)
      (Printf.sprintf "shard %d\nowner %s\nreason %s\n" id owner reason)
  with
  | Ok () -> Ok ()
  | Error e -> Error (Store.error_message e)

let quarantine_reason dir id =
  match (Store.active ()).Store.read (quarantine_path dir id) with
  | Ok data ->
      List.find_map
        (fun l ->
          match String.index_opt l ' ' with
          | Some i when String.sub l 0 i = "reason" ->
              Some (String.sub l (i + 1) (String.length l - i - 1))
          | _ -> None)
        (String.split_on_char '\n' data)
  | Error _ -> None
